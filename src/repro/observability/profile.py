"""Trace analysis behind ``pacor profile``.

Loads a JSONL trace (see :mod:`repro.observability.tracing`) and answers
the two questions the flow's performance work keeps asking: *where does
the wall clock go per stage* and *which nets are the effort sinks*.

Stage rows aggregate ``category == "stage"`` spans by name (a resumed
run re-executes its interrupted stage, so one stage may have several
spans — they are summed, and the count column shows the re-entry).
Net rows aggregate ``category == "net"`` spans by their ``net_id``
attribute, summing the ``astar_expansions`` deltas the router and the
negotiation kernel attach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.observability.tracing import read_trace_jsonl


@dataclass
class StageRow:
    """Aggregated wall-clock spend of one flow stage."""

    stage: str
    spans: int = 0
    total_s: float = 0.0
    share: float = 0.0  # of the flow root's duration


@dataclass
class NetRow:
    """Aggregated effort of one net across every kernel span."""

    net_id: int
    spans: int = 0
    total_s: float = 0.0
    astar_expansions: int = 0
    stages: List[str] = field(default_factory=list)


@dataclass
class TraceProfile:
    """The full analysis of one trace file."""

    trace_id: str
    flow_s: float  # summed duration of the flow root span(s)
    n_spans: int
    stages: List[StageRow]
    top_nets: List[NetRow]
    designs: List[str] = field(default_factory=list)


def _attr(doc: Dict[str, object], key: str) -> object:
    attrs = doc.get("attrs")
    return attrs.get(key) if isinstance(attrs, dict) else None


def profile_spans(
    spans: Sequence[Dict[str, object]], *, top_k: int = 5
) -> TraceProfile:
    """Analyse span documents into stage and top-net tables."""
    trace_ids = {str(s.get("trace_id")) for s in spans}
    flow_s = 0.0
    designs: List[str] = []
    for doc in spans:
        if doc.get("category") == "flow":
            flow_s += float(doc.get("dur_s") or 0.0)
            design = _attr(doc, "design")
            if design is not None and design not in designs:
                designs.append(str(design))

    stage_order: List[str] = []
    stage_rows: Dict[str, StageRow] = {}
    net_rows: Dict[int, NetRow] = {}
    # A span's enclosing stage names the net row's stage column.
    stage_of_span: Dict[str, str] = {}
    for doc in spans:
        if doc.get("category") == "stage":
            stage_of_span[str(doc.get("span_id"))] = str(doc.get("name"))
    parent_of = {
        str(doc.get("span_id")): doc.get("parent_id") for doc in spans
    }

    def enclosing_stage(doc: Dict[str, object]) -> Optional[str]:
        cursor = doc.get("parent_id")
        hops = 0
        while cursor is not None and hops < len(spans) + 1:
            hops += 1
            found = stage_of_span.get(str(cursor))
            if found is not None:
                return found
            cursor = parent_of.get(str(cursor))
        return None

    for doc in spans:
        category = doc.get("category")
        duration = float(doc.get("dur_s") or 0.0)
        if category == "stage":
            name = str(doc.get("name"))
            if name not in stage_rows:
                stage_rows[name] = StageRow(stage=name)
                stage_order.append(name)
            row = stage_rows[name]
            row.spans += 1
            row.total_s += duration
        elif category == "net":
            net_id = _attr(doc, "net_id")
            if net_id is None:
                continue
            net = net_rows.setdefault(int(net_id), NetRow(net_id=int(net_id)))
            net.spans += 1
            net.total_s += duration
            expansions = _attr(doc, "astar_expansions")
            if expansions is not None:
                net.astar_expansions += int(expansions)
            stage = enclosing_stage(doc)
            if stage is not None and stage not in net.stages:
                net.stages.append(stage)

    for row in stage_rows.values():
        row.share = row.total_s / flow_s if flow_s > 0 else 0.0
    top = sorted(
        net_rows.values(),
        key=lambda n: (-n.astar_expansions, -n.total_s, n.net_id),
    )[:top_k]
    return TraceProfile(
        trace_id=trace_ids.pop() if len(trace_ids) == 1 else "mixed",
        flow_s=flow_s,
        n_spans=len(spans),
        stages=[stage_rows[name] for name in stage_order],
        top_nets=top,
        designs=designs,
    )


def profile_trace_file(path: str, *, top_k: int = 5) -> TraceProfile:
    """Load ``path`` (JSONL) and profile it."""
    return profile_spans(read_trace_jsonl(path), top_k=top_k)


def format_profile(profile: TraceProfile) -> str:
    """Render the profile as the two aligned tables ``pacor profile`` prints."""
    from repro.analysis import format_table

    out: List[str] = []
    designs = f" design={','.join(profile.designs)}" if profile.designs else ""
    out.append(
        f"trace {profile.trace_id}:{designs} {profile.n_spans} spans, "
        f"flow {profile.flow_s:.3f}s"
    )
    out.append("")
    out.append("per-stage wall clock:")
    out.append(
        format_table(
            ["Stage", "Spans", "Total[s]", "Share"],
            [
                [s.stage, s.spans, f"{s.total_s:.4f}", f"{s.share:.1%}"]
                for s in profile.stages
            ],
        )
    )
    out.append("")
    out.append(f"top {len(profile.top_nets)} nets by A* expansions:")
    if profile.top_nets:
        out.append(
            format_table(
                ["Net", "Expansions", "Spans", "Total[s]", "Stages"],
                [
                    [
                        n.net_id,
                        n.astar_expansions,
                        n.spans,
                        f"{n.total_s:.4f}",
                        ",".join(n.stages) or "-",
                    ]
                    for n in profile.top_nets
                ],
            )
        )
    else:
        out.append("  (no net spans in this trace)")
    return "\n".join(out)
