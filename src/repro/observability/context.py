"""The process-wide active tracer/metrics pair.

Kernels (A*, min-cost flow, bounded search, detour) sit several call
layers below the :class:`~repro.core.pacor.PacorRouter` and do not take
an explicit observability handle; they reach the active instruments
through this module instead — the same pattern
:mod:`repro.robustness.faults` uses for injection points.  By default
the no-op singletons are installed, so uninstrumented runs pay one
global read per instrument fetch and nothing per event.

:class:`~repro.core.pacor.PacorRouter` resolves its tracer/metrics from
here at construction (so ``with use(metrics=m): run_pacor(...)`` works
without plumbing) and re-installs them around :meth:`run` (so an
explicitly passed pair reaches the kernels too).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.observability.metrics import NULL_METRICS, Counter, Gauge, Metrics
from repro.observability.tracing import NULL_TRACER, Span, Tracer

_tracer: Tracer = NULL_TRACER
_metrics: Metrics = NULL_METRICS


def install(
    tracer: Optional[Tracer] = None, metrics: Optional[Metrics] = None
) -> None:
    """Install instruments process-wide; None leaves that slot unchanged."""
    global _tracer, _metrics
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics


def clear() -> None:
    """Reset both slots to the no-op singletons."""
    global _tracer, _metrics
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS


@contextmanager
def use(
    tracer: Optional[Tracer] = None, metrics: Optional[Metrics] = None
) -> Iterator[None]:
    """Install instruments for a ``with`` block, then restore the previous."""
    global _tracer, _metrics
    saved = (_tracer, _metrics)
    install(tracer, metrics)
    try:
        yield
    finally:
        _tracer, _metrics = saved


def tracer() -> Tracer:
    """Return the active tracer (the no-op singleton by default)."""
    return _tracer


def metrics() -> Metrics:
    """Return the active metrics registry (no-op by default)."""
    return _metrics


def counter(name: str) -> Counter:
    """Return the active registry's counter ``name``."""
    return _metrics.counter(name)


def gauge(name: str) -> Gauge:
    """Return the active registry's gauge ``name``."""
    return _metrics.gauge(name)


def span(name: str, category: str = "span", **attrs: object) -> Span:
    """Open a span on the active tracer (no-op span when disabled)."""
    return _tracer.span(name, category=category, **attrs)
