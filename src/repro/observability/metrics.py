"""Named effort counters and gauges for the PACOR flow.

A :class:`Metrics` registry holds :class:`Counter` and :class:`Gauge`
objects by dotted name (``astar.expansions``, ``mcf.augmenting_paths``,
...).  Kernels obtain their counter once per call and increment a plain
integer attribute, so enabled instrumentation is one attribute add per
event; the module-level :data:`NULL_METRICS` singleton hands out shared
no-op instruments, so disabled instrumentation costs a single dynamic
dispatch at the *call site that fetches the instrument*, and nothing per
event when the kernel batches (see ``repro.routing.astar``).

The counter catalogue lives in ``docs/observability.md``; counters
measure *effort spent*, not outcome — a detoured edge that is later
rolled back still counted, because the work happened.
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath
from typing import Dict, Union


class Counter:
    """One monotonically increasing effort counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` to the counter."""
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """One last-value-wins measurement (e.g. nets routed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class _NullCounter(Counter):
    """Shared do-nothing counter; its value is pinned at 0."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    """Shared do-nothing gauge; its value is pinned at 0."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class Metrics:
    """A registry of named counters and gauges for one flow run.

    ``counter``/``gauge`` get-or-create, so callers never coordinate
    registration; :meth:`adopt` registers an *existing* counter object
    under a name, which is how the run's
    :class:`~repro.robustness.budget.Budget` shares its expansion
    counter with the registry instead of keeping a parallel tally.
    """

    enabled = True
    """False only on the no-op singleton; guards costly attr computation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter registered under ``name`` (creating it)."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """Return the gauge registered under ``name`` (creating it)."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def adopt(self, name: str, counter: Counter) -> Counter:
        """Register an existing ``counter`` object under ``name``.

        Any count already accumulated under that name is folded into the
        adopted counter so restored checkpoint counters survive.
        """
        previous = self._counters.get(name)
        if previous is not None and previous is not counter:
            counter.value += previous.value
        counter.name = name
        self._counters[name] = counter
        return counter

    def counter_values(self) -> Dict[str, int]:
        """Return the current counter values by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> Dict[str, float]:
        """Return the current gauge values by name."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def snapshot(self) -> Dict[str, float]:
        """Return one flat name -> value mapping (counters and gauges)."""
        out: Dict[str, float] = dict(self.counter_values())
        out.update(self.gauge_values())
        return out

    def restore_counters(self, values: Dict[str, int]) -> int:
        """Fold checkpointed counter values in; return how many carried."""
        carried = 0
        for name, value in values.items():
            self.counter(str(name)).inc(int(value))
            carried += 1
        return carried

    def to_json(self) -> Dict[str, object]:
        """Return the JSON document of the registry (see validate.py)."""
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
        }

    def export_json(self, path: Union[str, FilePath]) -> None:
        """Write the registry document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=True)


class NullMetrics(Metrics):
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def adopt(self, name: str, counter: Counter) -> Counter:
        return counter

    def restore_counters(self, values: Dict[str, int]) -> int:
        return 0


NULL_METRICS = NullMetrics()
"""The module-level no-op registry installed by default."""
