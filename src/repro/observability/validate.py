"""Schema validation for exported trace/metrics files (CI gate).

``python -m repro.observability.validate trace.jsonl [metrics.json]``
exits 0 when the files conform, 1 with a one-line diagnosis per problem
otherwise.  CI runs this on a fresh ``pacor route --trace --metrics``
export so a format regression fails the build instead of silently
producing files ``pacor profile`` cannot read.

Trace schema (one JSON object per line)::

    {"trace_id": str, "span_id": str, "parent_id": str|null,
     "name": str, "category": str, "ts": number,
     "dur_s": number|null, "attrs": object}

plus structural rules: span ids unique, every ``parent_id`` resolves
within the file (except a resumed root, whose parent lives in the
interrupted run's trace — flagged by a ``resumed_from`` attr), and at
least one root span exists.

Metrics schema::

    {"counters": {str: int >= 0}, "gauges": {str: number}}
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.observability.tracing import read_trace_jsonl

_SPAN_FIELDS = (
    "trace_id",
    "span_id",
    "parent_id",
    "name",
    "category",
    "ts",
    "dur_s",
    "attrs",
)


def validate_spans(spans: Sequence[Dict[str, object]]) -> List[str]:
    """Return every schema violation in ``spans`` (empty = valid)."""
    problems: List[str] = []
    ids: Dict[str, int] = {}
    for idx, doc in enumerate(spans):
        where = f"span {idx + 1}"
        for name in _SPAN_FIELDS:
            if name not in doc:
                problems.append(f"{where}: missing field {name!r}")
        span_id = doc.get("span_id")
        if not isinstance(span_id, str) or not span_id:
            problems.append(f"{where}: span_id must be a non-empty string")
        elif span_id in ids:
            problems.append(
                f"{where}: duplicate span_id {span_id!r} "
                f"(first seen at span {ids[span_id] + 1})"
            )
        else:
            ids[span_id] = idx
        for name in ("trace_id", "name", "category"):
            if name in doc and not isinstance(doc[name], str):
                problems.append(f"{where}: {name} must be a string")
        parent = doc.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            problems.append(f"{where}: parent_id must be a string or null")
        if "ts" in doc and not isinstance(doc["ts"], (int, float)):
            problems.append(f"{where}: ts must be a number")
        duration = doc.get("dur_s")
        if duration is not None and not isinstance(duration, (int, float)):
            problems.append(f"{where}: dur_s must be a number or null")
        elif isinstance(duration, (int, float)) and duration < 0:
            problems.append(f"{where}: dur_s must be non-negative")
        if "attrs" in doc and not isinstance(doc["attrs"], dict):
            problems.append(f"{where}: attrs must be an object")

    roots = 0
    for idx, doc in enumerate(spans):
        parent = doc.get("parent_id")
        if parent is None:
            roots += 1
            continue
        if not isinstance(parent, str):
            continue
        if parent not in ids:
            attrs = doc.get("attrs")
            resumed = isinstance(attrs, dict) and "resumed_from" in attrs
            if resumed:
                roots += 1  # stitches onto the interrupted trace
            else:
                problems.append(
                    f"span {idx + 1}: parent_id {parent!r} not in this "
                    f"trace (and span is not marked resumed_from)"
                )
    if spans and roots == 0:
        problems.append("trace has no root span (parent_id null)")
    return problems


def validate_metrics_doc(doc: object) -> List[str]:
    """Return every schema violation in a metrics document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"metrics document must be an object, got {type(doc).__name__}"]
    for section in ("counters", "gauges"):
        if section not in doc:
            problems.append(f"missing section {section!r}")
            continue
        values = doc[section]
        if not isinstance(values, dict):
            problems.append(f"{section} must be an object")
            continue
        for name, value in values.items():
            if not isinstance(name, str):
                problems.append(f"{section}: non-string key {name!r}")
            if section == "counters":
                if not isinstance(value, int) or isinstance(value, bool):
                    problems.append(
                        f"counters[{name!r}]: must be an integer, "
                        f"got {type(value).__name__}"
                    )
                elif value < 0:
                    problems.append(f"counters[{name!r}]: negative ({value})")
            elif not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(
                    f"gauges[{name!r}]: must be a number, "
                    f"got {type(value).__name__}"
                )
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Validate a JSONL trace file; return its problems."""
    try:
        spans = read_trace_jsonl(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not spans:
        return [f"{path}: trace is empty"]
    return [f"{path}: {p}" for p in validate_spans(spans)]


def validate_metrics_file(path: str) -> List[str]:
    """Validate a metrics JSON file; return its problems."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        return [f"{path}: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON ({exc})"]
    return [f"{path}: {p}" for p in validate_metrics_doc(doc)]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: validate a trace file and optionally a metrics file."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or len(args) > 2:
        print(
            "usage: python -m repro.observability.validate "
            "TRACE.jsonl [METRICS.json]",
            file=sys.stderr,
        )
        return 2
    problems = validate_trace_file(args[0])
    if len(args) == 2:
        problems += validate_metrics_file(args[1])
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        return 1
    summary = f"OK: {args[0]} valid"
    if len(args) == 2:
        summary += f", {args[1]} valid"
    print(summary)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
