"""Nested wall-clock spans for the PACOR flow.

A :class:`Tracer` records a tree of :class:`Span` objects — one ``flow``
root per run, one ``stage`` span per executed stage, ``round`` spans for
negotiation/escape iterations, ``net`` spans for per-net kernel work —
and exports them as JSONL (one span object per line, the format
``pacor profile`` and ``repro.observability.validate`` read) or as the
Chrome trace-event format loadable in ``chrome://tracing`` / Perfetto.

Spans are context managers::

    with tracer.span("escape", category="stage") as sp:
        ...
        sp.set(routed=5)

The :data:`NULL_TRACER` singleton returns one shared no-op span, so a
``tracer.span(...)`` call with tracing disabled allocates nothing.

Resume stitching: a resumed run calls :meth:`Tracer.link_resume` with
the interrupted run's trace/span id (carried by the checkpoint); the
resumed trace keeps the same ``trace_id`` and its root span is parented
on the interrupted span, so the two JSONL files concatenate into one
well-formed trace.
"""

from __future__ import annotations

import json
import time
import uuid
from pathlib import Path as FilePath
from types import TracebackType
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.robustness.errors import TraceFormatError


class Span:
    """One timed, named, attributed interval of the flow.

    Attributes:
        span_id: unique id within the trace (``<trace_id>:<seq>``).
        parent_id: enclosing span's id (None for the root).
        name: human-readable label (stage name, ``escape-round``, ...).
        category: coarse kind — ``flow``, ``stage``, ``round``, ``net``
            or ``kernel`` — which is what the profiler groups by.
        ts: epoch seconds at start.
        duration_s: wall-clock length; None while the span is open.
        attrs: free-form JSON-serialisable payload (net ids, counter
            deltas, error flags).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "ts",
        "duration_s",
        "attrs",
        "_tracer",
        "_start_perf",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: str,
        parent_id: Optional[str],
        name: str,
        category: str,
        ts: float,
        start_perf: float,
        attrs: Dict[str, object],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.ts = ts
        self.duration_s: Optional[float] = None
        self.attrs = attrs
        self._tracer = tracer
        self._start_perf = start_perf

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span (last write per key wins)."""
        self.attrs.update(attrs)

    @property
    def closed(self) -> bool:
        """Return True once the span has ended."""
        return self.duration_s is not None

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        if exc is not None:
            self.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        self._tracer._close(self)
        return False

    def to_json(self) -> Dict[str, object]:
        """Return the JSONL document of the span."""
        return {
            "trace_id": self._tracer.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "ts": self.ts,
            "dur_s": self.duration_s,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    span_id = None

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


# The singleton duck-types Span (enter/exit/set) without its storage.
_NULL_SPAN: Span = _NullSpan()  # type: ignore[assignment]


class Tracer:
    """Records one run's span tree.

    Spans may be opened while others are open (they nest on a stack);
    whichever span is innermost when an incident is recorded becomes the
    incident's ``span_id``, which is how degraded runs tie diagnostics
    to the phase that produced them.
    """

    enabled = True
    """False only on the no-op singleton."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._seq = 0
        self._seq_prefix = ""
        self._resume_parent: Optional[str] = None
        self._listeners: List[Callable[[Span], None]] = []
        # One epoch anchor so ts values are epoch seconds but durations
        # come from the monotonic performance clock.
        self._epoch_anchor = time.time() - time.perf_counter()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "span", **attrs: object) -> Span:
        """Open a new span as a child of the innermost open span."""
        if self._stack:
            parent_id: Optional[str] = self._stack[-1].span_id
        else:
            # A top-level span of a resumed run stitches onto the
            # interrupted run's active span; the ``resumed_from`` attr
            # tells the validator its parent lives in the other file.
            parent_id = self._resume_parent
            if parent_id is not None:
                attrs = dict(attrs, resumed_from=parent_id)
        self._seq += 1
        start_perf = time.perf_counter()
        span = Span(
            tracer=self,
            span_id=f"{self.trace_id}:{self._seq_prefix}{self._seq}",
            parent_id=parent_id,
            name=name,
            category=category,
            ts=self._epoch_anchor + start_perf,
            start_perf=start_perf,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Register a callback fired with every span the moment it closes.

        This is the live progress stream: ``pacor serve`` workers attach
        a listener that bridges closed stage/round spans into the job's
        events file, so API clients can follow a run's progress without
        waiting for the final JSONL export.  Listener exceptions
        propagate to the span's ``__exit__`` — keep callbacks trivial.
        """
        self._listeners.append(listener)

    def _close(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - span._start_perf
        # Normal nesting pops the top; a span closed out of order (a
        # fault path skipped an inner __exit__) also force-closes the
        # orphans above it so the trace never contains dangling spans.
        closed: List[Span] = []
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.duration_s is None:
                top.duration_s = time.perf_counter() - top._start_perf
                top.attrs.setdefault("force_closed", True)
                closed.append(top)
        closed.append(span)
        for done in closed:  # innermost first, the span itself last
            for listener in self._listeners:
                listener(done)

    def current_span_id(self) -> Optional[str]:
        """Return the innermost open span's id, or None."""
        return self._stack[-1].span_id if self._stack else None

    def link_resume(self, trace_id: str, span_id: Optional[str]) -> None:
        """Continue an interrupted trace: same id, parented root span.

        This tracer's own (pre-link) random id becomes a span-id prefix,
        so a resumed attempt's sequence numbers can never collide with
        the interrupted run's ids — or another resume's — and the two
        JSONL files concatenate into one valid trace.
        """
        self._seq_prefix = f"{self.trace_id[:8]}."
        self.trace_id = str(trace_id)
        self._resume_parent = span_id

    # -- export -------------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """Yield one JSON line per recorded span (open spans included)."""
        for span in self.spans:
            yield json.dumps(span.to_json(), sort_keys=True)

    def export_jsonl(self, path: Union[str, FilePath]) -> int:
        """Write the trace as JSONL; return the number of spans written."""
        n = 0
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")
                n += 1
        return n

    def chrome_trace(self) -> Dict[str, object]:
        """Return the Chrome trace-event document of the trace.

        Complete (``ph: "X"``) events with microsecond timestamps; load
        the exported file in ``chrome://tracing`` or Perfetto.
        """
        events: List[Dict[str, object]] = []
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.ts * 1e6,
                    "dur": (span.duration_s or 0.0) * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": dict(span.attrs, span_id=span.span_id),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: Union[str, FilePath]) -> int:
        """Write the Chrome trace-event file; return the event count."""
        doc = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        return len(doc["traceEvents"])  # type: ignore[arg-type]


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing per span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_id="null")

    def span(self, name: str, category: str = "span", **attrs: object) -> Span:
        return _NULL_SPAN

    def current_span_id(self) -> Optional[str]:
        return None


NULL_TRACER = NullTracer()
"""The module-level no-op tracer installed by default."""


def read_trace_jsonl(path: Union[str, FilePath]) -> List[Dict[str, object]]:
    """Read a JSONL trace file back into span documents.

    Raises:
        ValueError: a line is not a JSON object (the error names the
            1-based line number).
    """
    spans: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"not valid JSON at line {lineno} ({exc})", path=str(path)
                )
            if not isinstance(doc, dict):
                raise TraceFormatError(
                    f"expected a span object at line {lineno}, "
                    f"got {type(doc).__name__}",
                    path=str(path),
                )
            spans.append(doc)
    return spans
