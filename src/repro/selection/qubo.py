"""QUBO formulation and simulated annealing for candidate selection.

The paper's third MWCP solver follows Alidaee et al.: recast the maximum
weight clique problem as an *unconstrained quadratic program* over binary
variables and optimise it heuristically.  This module provides that
formulation faithfully:

* :func:`build_qubo` — Q matrix over one binary variable per flattened
  candidate: diagonal terms carry the node weights (Cm) plus a reward for
  picking a candidate, off-diagonal terms carry the pair weights (Co)
  between different clusters and a large penalty between candidates of
  the *same* cluster (so feasibility is folded into the objective, as in
  the unconstrained reformulation);
* :func:`solve_qubo_annealing` — single-flip simulated annealing with a
  repair step that maps the best binary state back to a one-candidate-
  per-cluster selection.
"""

from __future__ import annotations

import math
import random
from typing import List

import numpy as np

from repro.selection.mwcp import SelectionInstance
from repro.selection.solvers import SelectionResult, solve_greedy

_SAME_CLUSTER_PENALTY = 10.0
_PICK_REWARD = 1.0


def build_qubo(instance: SelectionInstance) -> np.ndarray:
    """Return the symmetric QUBO matrix ``Q`` (maximise ``x^T Q x``).

    ``x`` is a 0/1 vector over the flattened candidates.  The reward on
    the diagonal makes covering every cluster profitable; the same-
    cluster penalty dominates it, so optimal states pick exactly one
    candidate per cluster.
    """
    n = len(instance.trees)
    q = np.zeros((n, n), dtype=float)
    for i in range(n):
        q[i, i] = _PICK_REWARD + float(instance.node_weight[i])
    for i in range(n):
        for j in range(i + 1, n):
            if instance.cluster_of[i] == instance.cluster_of[j]:
                w = -_SAME_CLUSTER_PENALTY
            else:
                w = instance.pair_weight(i, j)
            q[i, j] = w / 2.0
            q[j, i] = w / 2.0
    return q


def _energy(q: np.ndarray, x: np.ndarray) -> float:
    return float(x @ q @ x)


def solve_qubo_annealing(
    instance: SelectionInstance,
    *,
    seed: int = 0,
    sweeps: int = 300,
    t_start: float = 1.0,
    t_end: float = 0.01,
) -> SelectionResult:
    """Optimise the QUBO by simulated annealing, then repair to a selection.

    Always returns a *feasible* selection: the best annealed state is
    projected to one candidate per cluster (highest marginal candidate
    for clusters the state over/under-covers), and the final objective is
    the true clique weight of that selection — comparable directly to the
    other solvers' results.
    """
    rng = random.Random(seed)
    q = build_qubo(instance)
    n = len(instance.trees)

    # Start from the greedy selection (the annealer refines it).
    greedy = solve_greedy(instance)
    x = np.zeros(n)
    for ci, a in enumerate(greedy.choice):
        x[instance.flat_index(ci, a)] = 1.0

    best_x = x.copy()
    best_e = _energy(q, x)
    current_e = best_e
    for sweep in range(sweeps):
        t = t_start * (t_end / t_start) ** (sweep / max(sweeps - 1, 1))
        for _ in range(n):
            i = rng.randrange(n)
            # Energy delta of flipping x[i].
            delta = (1 - 2 * x[i]) * (q[i, i] + 2 * float(q[i] @ x) - 2 * q[i, i] * x[i])
            if delta >= 0 or rng.random() < math.exp(delta / max(t, 1e-9)):
                x[i] = 1.0 - x[i]
                current_e += delta
                if current_e > best_e:
                    best_e = current_e
                    best_x = x.copy()

    # Repair: pick per cluster the best candidate under the annealed state.
    choice: List[int] = []
    picked_flats: List[int] = []
    for ci, cands in enumerate(instance.clusters):
        flats = [instance.flat_index(ci, a) for a in range(len(cands))]
        selected = [a for a, f in enumerate(flats) if best_x[f] > 0.5]
        if len(selected) == 1:
            choice.append(selected[0])
        else:
            # Over/under-covered cluster: take the marginal best against
            # what has been fixed so far.
            def marginal(a: int) -> float:
                f = instance.flat_index(ci, a)
                g = float(instance.node_weight[f])
                for other in picked_flats:
                    g += instance.pair_weight(f, other)
                return g

            choice.append(max(range(len(cands)), key=lambda a: (marginal(a), -a)))
        picked_flats.append(instance.flat_index(ci, choice[-1]))
    return SelectionResult(choice, instance.objective(choice))
