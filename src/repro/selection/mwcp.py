"""The MWCP selection instance: weights of the clique graph.

Flattens the per-cluster candidate lists into one node set, precomputes
the node weights (Eq. 2) and pairwise edge weights (Eq. 3) between
candidates of different clusters, and exposes the objective the solvers
optimise: pick exactly one candidate per cluster maximising the summed
node and induced edge weights (all weights are <= 0, so "maximise"
means "lose the least routability and matching").
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx
import numpy as np

from repro.dme.tree import CandidateTree
from repro.selection.costs import mismatch_costs, tree_overlap_cost


class SelectionInstance:
    """One-candidate-per-cluster selection with pairwise interaction costs.

    Attributes:
        clusters: candidate trees per cluster (ragged list).
        node_weight: flat array of Cm per flattened candidate.
        cluster_of: flat array mapping candidate index -> cluster index.
        offsets: first flat index of each cluster's candidates.
    """

    def __init__(
        self, clusters: Sequence[Sequence[CandidateTree]], lam: float = 0.1
    ) -> None:
        if any(len(c) == 0 for c in clusters):
            raise ValueError("every cluster needs at least one candidate tree")
        self.lam = lam
        self.clusters: List[List[CandidateTree]] = [list(c) for c in clusters]
        flat: List[CandidateTree] = [t for c in self.clusters for t in c]
        self.trees = flat
        self.node_weight = np.array(mismatch_costs(flat, lam), dtype=float)
        self.cluster_of = np.array(
            [ci for ci, c in enumerate(self.clusters) for _ in c], dtype=int
        )
        self.offsets: List[int] = []
        acc = 0
        for c in self.clusters:
            self.offsets.append(acc)
            acc += len(c)
        self._pair = np.zeros((len(flat), len(flat)), dtype=float)
        for i, ta in enumerate(flat):
            for j in range(i + 1, len(flat)):
                if self.cluster_of[i] == self.cluster_of[j]:
                    continue
                w = tree_overlap_cost(ta, flat[j], lam)
                self._pair[i, j] = w
                self._pair[j, i] = w

    @property
    def n_clusters(self) -> int:
        """Return the number of clusters to select for."""
        return len(self.clusters)

    def flat_index(self, cluster: int, candidate: int) -> int:
        """Return the flat node index of ``candidate`` within ``cluster``."""
        return self.offsets[cluster] + candidate

    def pair_weight(self, a: int, b: int) -> float:
        """Return the overlap cost between flat candidates ``a`` and ``b``."""
        return float(self._pair[a, b])

    def objective(self, choice: Sequence[int]) -> float:
        """Return the clique weight of ``choice`` (candidate index per cluster).

        The objective is the sum of selected node weights plus all induced
        pairwise edge weights — exactly the maximum-weight-clique value of
        the paper's formulation.
        """
        if len(choice) != self.n_clusters:
            raise ValueError("choice must pick one candidate per cluster")
        flats = [self.flat_index(ci, choice[ci]) for ci in range(self.n_clusters)]
        total = float(sum(self.node_weight[f] for f in flats))
        for x in range(len(flats)):
            for y in range(x + 1, len(flats)):
                total += float(self._pair[flats[x], flats[y]])
        return total

    def selected_trees(self, choice: Sequence[int]) -> List[CandidateTree]:
        """Return the chosen candidate tree per cluster."""
        return [self.clusters[ci][choice[ci]] for ci in range(self.n_clusters)]


def build_clique_graph(instance: SelectionInstance) -> nx.Graph:
    """Return the paper's clique graph for an instance.

    Nodes are flattened candidates with a ``weight`` attribute (Cm);
    edges join candidates of different clusters with a ``weight``
    attribute (Co).  Cliques of size ``n_clusters`` correspond exactly to
    valid selections, so a maximum-weight such clique is the optimum.
    """
    graph = nx.Graph()
    for i, w in enumerate(instance.node_weight):
        graph.add_node(i, weight=float(w), cluster=int(instance.cluster_of[i]))
    n = len(instance.trees)
    for i in range(n):
        for j in range(i + 1, n):
            if instance.cluster_of[i] != instance.cluster_of[j]:
                graph.add_edge(i, j, weight=instance.pair_weight(i, j))
    return graph
