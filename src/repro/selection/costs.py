"""Selection costs: length mismatch (Eq. 2) and overlap (Eqs. 3-4)."""

from __future__ import annotations

from typing import List, Sequence

from repro.dme.tree import CandidateTree, TreeEdge


def mismatch_costs(
    candidates: Sequence[CandidateTree], lam: float = 0.1
) -> List[float]:
    """Return the mismatch cost ``Cm`` for every candidate tree (Eq. 2).

    ``Cm_j = -lam * dL_j / max_k dL_k`` over *all* candidates of all
    clusters; when every candidate has zero estimated mismatch all costs
    are zero.
    """
    mismatches = [t.mismatch() for t in candidates]
    worst = max(mismatches, default=0)
    if worst == 0:
        return [0.0] * len(candidates)
    return [-lam * m / worst for m in mismatches]


def edge_overlap_cost(a: TreeEdge, b: TreeEdge) -> float:
    """Return ``olcost`` between two tree edges (Eq. 4).

    The overlap area of the two edge bounding boxes, normalised by the
    smaller box area.  Inclusive single-cell boxes have area 1, so the
    denominator is never zero.
    """
    box_a = a.bounding_box()
    box_b = b.bounding_box()
    overlap = box_a.overlap_area(box_b)
    if overlap == 0:
        return 0.0
    return overlap / min(box_a.area, box_b.area)


def tree_overlap_cost(
    tree_a: CandidateTree, tree_b: CandidateTree, lam: float = 0.1
) -> float:
    """Return the overlap cost ``Co`` between two candidate trees (Eq. 3).

    ``Co = -(1 - lam) * sum_{el in Ta} sum_{em in Tb} olcost(el, em)``.
    ``lam = 0.1`` weights routability above mismatch, as in the paper.
    """
    total = 0.0
    edges_b = tree_b.edges()
    for ea in tree_a.edges():
        for eb in edges_b:
            total += edge_overlap_cost(ea, eb)
    return -(1.0 - lam) * total
