"""Candidate Steiner-tree selection (Section 4.2).

One candidate tree must be chosen per length-matching cluster, trading
off two costs:

* the *length-mismatch cost* ``Cm`` (Eq. 2) — normalised estimated ΔL,
* the *overlap cost* ``Co`` (Eqs. 3-4) — bounding-box overlap between
  edges of trees from different clusters (a routability proxy).

The paper formulates this as a maximum weight clique problem and solves
it with Gurobi ILP.  The clique graph has one node per candidate with
weight ``Cm`` and an edge between candidates of *different* clusters with
weight ``Co`` — any clique picks at most one candidate per cluster, and a
maximum one covering all clusters is the selection.  This repo solves the
identical optimisation with an exact branch-and-bound (the ILP
substitute), a greedy constructor (the "graph-based" variant), and a
swap-based local search (the "unconstrained quadratic programming"
variant); see DESIGN.md for the substitution argument.
"""

from repro.selection.costs import (
    edge_overlap_cost,
    mismatch_costs,
    tree_overlap_cost,
)
from repro.selection.mwcp import SelectionInstance, build_clique_graph
from repro.selection.qubo import build_qubo, solve_qubo_annealing
from repro.selection.solvers import (
    SelectionResult,
    solve_exact,
    solve_greedy,
    solve_local_search,
)

__all__ = [
    "mismatch_costs",
    "edge_overlap_cost",
    "tree_overlap_cost",
    "SelectionInstance",
    "build_clique_graph",
    "SelectionResult",
    "solve_exact",
    "solve_greedy",
    "solve_local_search",
    "build_qubo",
    "solve_qubo_annealing",
]
