"""Solvers for the candidate-selection MWCP instance.

Three solvers mirror the three methods the paper implemented:

* :func:`solve_exact` — branch-and-bound, exact for the instance sizes in
  the evaluation (this stands in for the Gurobi ILP, which the paper
  found best).
* :func:`solve_greedy` — sequential construction ("graph-based" method).
* :func:`solve_local_search` — greedy start plus single-swap descent (the
  unconstrained-quadratic-programming stand-in).

All weights are non-positive, so every solver maximises a sum of
penalties towards zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.selection.mwcp import SelectionInstance


@dataclass
class SelectionResult:
    """Outcome of a selection solve.

    Attributes:
        choice: selected candidate index per cluster.
        objective: clique weight of the selection (<= 0).
        optimal: True when the solver proved optimality.
        nodes_explored: search effort (branch-and-bound only).
    """

    choice: List[int]
    objective: float
    optimal: bool = False
    nodes_explored: int = 0


def _incremental_gain(
    instance: SelectionInstance,
    cluster: int,
    candidate: int,
    chosen_flats: Sequence[int],
) -> float:
    """Return node weight + edges to already-chosen candidates."""
    flat = instance.flat_index(cluster, candidate)
    gain = float(instance.node_weight[flat])
    for other in chosen_flats:
        gain += instance.pair_weight(flat, other)
    return gain


def solve_greedy(instance: SelectionInstance) -> SelectionResult:
    """Pick per-cluster candidates sequentially, best-incremental-first.

    Clusters with fewer candidates are decided first (least freedom),
    and each decision maximises the marginal gain against the partial
    selection.
    """
    order = sorted(
        range(instance.n_clusters), key=lambda ci: (len(instance.clusters[ci]), ci)
    )
    choice = [0] * instance.n_clusters
    chosen_flats: List[int] = []
    for ci in order:
        best_candidate = max(
            range(len(instance.clusters[ci])),
            key=lambda a: (_incremental_gain(instance, ci, a, chosen_flats), -a),
        )
        choice[ci] = best_candidate
        chosen_flats.append(instance.flat_index(ci, best_candidate))
    return SelectionResult(choice, instance.objective(choice))


def solve_local_search(
    instance: SelectionInstance,
    *,
    start: Optional[Sequence[int]] = None,
    max_rounds: int = 50,
) -> SelectionResult:
    """Improve a selection by single-cluster swaps until a local optimum.

    Each round scans every cluster and re-optimises its candidate with
    the rest fixed; rounds repeat until no swap improves the objective.
    """
    if start is None:
        choice = solve_greedy(instance).choice
    else:
        choice = list(start)
    flats = [instance.flat_index(ci, choice[ci]) for ci in range(instance.n_clusters)]

    def marginal(ci: int, a: int) -> float:
        flat = instance.flat_index(ci, a)
        gain = float(instance.node_weight[flat])
        for cj in range(instance.n_clusters):
            if cj != ci:
                gain += instance.pair_weight(flat, flats[cj])
        return gain

    for _ in range(max_rounds):
        improved = False
        for ci in range(instance.n_clusters):
            current = marginal(ci, choice[ci])
            best_a, best_gain = choice[ci], current
            for a in range(len(instance.clusters[ci])):
                if a == choice[ci]:
                    continue
                gain = marginal(ci, a)
                if gain > best_gain + 1e-12:
                    best_a, best_gain = a, gain
            if best_a != choice[ci]:
                choice[ci] = best_a
                flats[ci] = instance.flat_index(ci, best_a)
                improved = True
        if not improved:
            break
    return SelectionResult(choice, instance.objective(choice))


def solve_exact(
    instance: SelectionInstance,
    *,
    max_nodes: int = 500_000,
) -> SelectionResult:
    """Branch-and-bound over clusters; exact unless the node budget trips.

    The bound exploits non-positive weights: a partial selection can gain
    at most, for each undecided cluster, the best ``node weight + edges
    to decided candidates`` (edges among undecided clusters are bounded
    by zero).  Starts from the local-search incumbent.  When ``max_nodes``
    is exhausted the incumbent is returned with ``optimal=False``.
    """
    incumbent = solve_local_search(instance)
    best_choice = list(incumbent.choice)
    best_value = incumbent.objective

    order = sorted(
        range(instance.n_clusters), key=lambda ci: (len(instance.clusters[ci]), ci)
    )
    nodes_explored = 0
    budget_hit = False

    choice: List[int] = [0] * instance.n_clusters
    chosen_flats: List[int] = []

    def bound_remaining(depth: int) -> float:
        total = 0.0
        for pos in range(depth, len(order)):
            ci = order[pos]
            total += max(
                _incremental_gain(instance, ci, a, chosen_flats)
                for a in range(len(instance.clusters[ci]))
            )
        return total

    def descend(depth: int, value: float) -> None:
        nonlocal best_choice, best_value, nodes_explored, budget_hit
        if budget_hit:
            return
        nodes_explored += 1
        if nodes_explored > max_nodes:
            budget_hit = True
            return
        if depth == len(order):
            if value > best_value + 1e-12:
                best_value = value
                best_choice = list(choice)
            return
        if value + bound_remaining(depth) <= best_value + 1e-12:
            return
        ci = order[depth]
        ranked = sorted(
            range(len(instance.clusters[ci])),
            key=lambda a: -_incremental_gain(instance, ci, a, chosen_flats),
        )
        for a in ranked:
            gain = _incremental_gain(instance, ci, a, chosen_flats)
            choice[ci] = a
            chosen_flats.append(instance.flat_index(ci, a))
            descend(depth + 1, value + gain)
            chosen_flats.pop()

    descend(0, 0.0)
    return SelectionResult(
        best_choice,
        instance.objective(best_choice),
        optimal=not budget_hit,
        nodes_explored=nodes_explored,
    )
