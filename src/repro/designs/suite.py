"""The Table-1 benchmark suite.

Seven designs with exactly the published parameters of Table 1 (grid
size, #valves, #candidate control pins, #obstructed cells) and cluster
structures consistent with Table 2's "#Clusters" column.  Chip2 contains
*only* two-valve clusters, which Section 7 states explicitly; the other
designs mix sizes 2-4.  Layout details were never published, so valve
coordinates, obstacle shapes and activation sequences are synthesized
deterministically (fixed seeds) with these statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.designs.design import Design
from repro.designs.generator import ClusterPlan, generate_design

TABLE1_PARAMETERS = {
    "Chip1": {"size": (179, 413), "n_valves": 176, "n_pins": 556, "n_obs": 1800},
    "Chip2": {"size": (231, 265), "n_valves": 56, "n_pins": 495, "n_obs": 1863},
    "S1": {"size": (12, 12), "n_valves": 5, "n_pins": 14, "n_obs": 9},
    "S2": {"size": (22, 22), "n_valves": 10, "n_pins": 40, "n_obs": 54},
    "S3": {"size": (52, 52), "n_valves": 15, "n_pins": 93, "n_obs": 0},
    "S4": {"size": (72, 72), "n_valves": 20, "n_pins": 139, "n_obs": 27},
    "S5": {"size": (152, 152), "n_valves": 40, "n_pins": 306, "n_obs": 135},
}
"""Published Table-1 parameters, used to parameterise (and test) the suite."""


def _make(
    name: str,
    cluster_sizes: List[int],
    n_singletons: int,
    seed: int,
    core_fraction: float = 1.0,
) -> Design:
    params = TABLE1_PARAMETERS[name]
    width, height = params["size"]
    design = generate_design(
        name,
        width,
        height,
        clusters=[ClusterPlan(s) for s in cluster_sizes],
        n_singletons=n_singletons,
        n_pins=params["n_pins"],
        n_obstacles=params["n_obs"],
        seed=seed,
        core_fraction=core_fraction,
    )
    assert len(design.valves) == params["n_valves"], name
    return design


def chip1() -> Design:
    """Chip1: 179x413, 176 valves, 556 pins, 1800 obstacle cells, 40 clusters.

    Clusters are packed into the chip core (real mVLSI chips concentrate
    their valves in the functional region), which recreates the paper's
    regime where only part of the 40 clusters can be length-matched.
    """
    sizes = [2] * 20 + [3] * 12 + [4] * 8  # 108 clustered valves
    return _make("Chip1", sizes, n_singletons=176 - 108, seed=1001, core_fraction=0.30)


def chip2() -> Design:
    """Chip2: 231x265, 56 valves, 495 pins, 1863 obstacles, 22 two-valve clusters.

    Section 7: Chip2 has abundant routing resource and only two-valve
    clusters, so all methods match everything — hence no core packing.
    """
    sizes = [2] * 22  # 44 clustered valves; Section 7: only 2-valve clusters
    return _make("Chip2", sizes, n_singletons=56 - 44, seed=1002)


def s1() -> Design:
    """S1: 12x12, 5 valves, 14 pins, 9 obstacles, 2 clusters."""
    return _make("S1", [2, 2], n_singletons=1, seed=2001)


def s2() -> Design:
    """S2: 22x22, 10 valves, 40 pins, 54 obstacles, 2 clusters."""
    return _make("S2", [3, 2], n_singletons=5, seed=2002, core_fraction=0.35)


def s3() -> Design:
    """S3: 52x52, 15 valves, 93 pins, no obstacles, 5 clusters."""
    return _make("S3", [2, 2, 3, 2, 3], n_singletons=3, seed=2003, core_fraction=0.2)


def s4() -> Design:
    """S4: 72x72, 20 valves, 139 pins, 27 obstacles, 7 clusters."""
    return _make(
        "S4", [2, 2, 2, 3, 3, 2, 2], n_singletons=4, seed=2004, core_fraction=0.2
    )


def s5() -> Design:
    """S5: 152x152, 40 valves, 306 pins, 135 obstacles, 13 clusters."""
    sizes = [2] * 8 + [3] * 5  # 31 clustered valves
    return _make("S5", sizes, n_singletons=9, seed=2005, core_fraction=0.12)


_FACTORIES: Dict[str, Callable[[], Design]] = {
    "Chip1": chip1,
    "Chip2": chip2,
    "S1": s1,
    "S2": s2,
    "S3": s3,
    "S4": s4,
    "S5": s5,
}


def design_by_name(name: str) -> Design:
    """Build one suite design by its Table-1 name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown design {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None


def table1_suite(include_chips: bool = True) -> List[Design]:
    """Build the full suite (S1-S5 plus, optionally, Chip1/Chip2)."""
    names = ["S1", "S2", "S3", "S4", "S5"]
    if include_chips:
        names = ["Chip1", "Chip2"] + names
    return [design_by_name(n) for n in names]
