"""Design perturbation utilities for robustness studies.

A practical router must tolerate small layout revisions — a valve nudged
by a design iteration, a few extra obstruction cells from a late flow
change.  These helpers derive perturbed variants of a design
deterministically, used by ``benchmarks/bench_robustness.py`` to measure
how stable PACOR's matching and completion are under such noise.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.designs.design import Design
from repro.designs.io import design_from_json, design_to_json
from repro.geometry.point import Point


def _copy(design: Design) -> Design:
    return design_from_json(design_to_json(design))


def jitter_valves(
    design: Design,
    *,
    max_shift: int = 1,
    fraction: float = 0.5,
    seed: int = 0,
) -> Design:
    """Return a copy with a fraction of valves nudged by up to ``max_shift``.

    Moves preserve validity: targets must be free, unoccupied, off the
    boundary, and keep at least spacing 2 to other valves.  Valves that
    cannot move legally stay put.
    """
    if max_shift < 0 or not 0.0 <= fraction <= 1.0:
        raise ValueError("bad jitter parameters")
    out = _copy(design)
    rng = random.Random(seed)
    taken: Set[Point] = {v.position for v in out.valves}
    order = [v for v in out.valves if rng.random() < fraction]
    for valve in order:
        dx = rng.randint(-max_shift, max_shift)
        dy = rng.randint(-max_shift, max_shift)
        target = valve.position.translated(dx, dy)
        if target == valve.position:
            continue
        if not out.grid.is_free(target) or out.grid.is_boundary(target):
            continue
        others = taken - {valve.position}
        if target in others or any(target.manhattan(q) < 2 for q in others):
            continue
        taken.discard(valve.position)
        taken.add(target)
        index = next(i for i, v in enumerate(out.valves) if v.id == valve.id)
        out.valves[index] = type(valve)(valve.id, target, valve.sequence)
    out.validate()
    return out


def add_obstacle_noise(
    design: Design,
    *,
    n_cells: int = 10,
    seed: int = 0,
    margin: int = 2,
) -> Design:
    """Return a copy with ``n_cells`` extra random obstacle cells.

    New obstacles keep ``margin`` cells clear of every valve and never
    touch the boundary or control pins, so the instance stays plausible.
    Gives up (returning fewer obstacles) when free space runs out.
    """
    if n_cells < 0:
        raise ValueError("n_cells must be non-negative")
    out = _copy(design)
    rng = random.Random(seed)
    valve_cells = {v.position for v in out.valves}
    pins = set(out.control_pins)
    placed = 0
    attempts = 0
    while placed < n_cells and attempts < 200 * (n_cells + 1):
        attempts += 1
        p = Point(
            rng.randrange(1, out.grid.width - 1),
            rng.randrange(1, out.grid.height - 1),
        )
        if not out.grid.is_free(p) or p in pins or out.grid.is_boundary(p):
            continue
        if any(p.manhattan(v) <= margin for v in valve_cells):
            continue
        out.grid.set_obstacle(p)
        placed += 1
    out.validate()
    return out


def perturbation_family(
    design: Design, *, count: int = 5, seed: int = 100
) -> List[Design]:
    """Return ``count`` independently perturbed variants of ``design``."""
    variants = []
    for i in range(count):
        variant = jitter_valves(design, seed=seed + i)
        variant = add_obstacle_noise(variant, n_cells=8, seed=seed + i)
        variant.name = f"{design.name}-p{i}"
        variants.append(variant)
    return variants
