"""Deterministic synthetic design generation.

Generates routing instances with prescribed statistics: grid size,
obstacle cell count, per-cluster valve counts (length-matching clusters),
singleton valves, and candidate control pins on the chip boundary.
Valves of a cluster are placed close together (as in real biochips,
where a functional unit's valves are co-located); activation sequences
are constructed so the clustering stage recovers exactly the planned
clusters: members share their cluster's base sequence and base sequences
of different clusters are pairwise incompatible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Set

from repro.designs.design import Design
from repro.geometry.point import Point, cell_point
from repro.geometry.rect import Rect
from repro.grid.grid import RoutingGrid
from repro.robustness.errors import GenerationError
from repro.valves.activation import ActivationSequence
from repro.valves.valve import Valve

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.robustness.faultmap import FaultMap


@dataclass(frozen=True)
class ClusterPlan:
    """Planned multi-valve cluster: member count and LM flag."""

    size: int
    length_matching: bool = True

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("planned clusters need at least two valves")


def _base_sequences(count: int, time_steps: int) -> List[ActivationSequence]:
    """Return ``count`` pairwise-incompatible activation sequences.

    Distinct binary encodings (no don't-cares) differ in at least one
    concrete step, which makes them incompatible by Definition 2.
    """
    if count > (1 << time_steps):
        raise ValueError(
            f"cannot encode {count} incompatible sequences in {time_steps} steps"
        )
    sequences = []
    for i in range(count):
        bits = format(i, f"0{time_steps}b")
        sequences.append(ActivationSequence(bits))
    return sequences


def _place_obstacles(
    grid: RoutingGrid,
    n_cells: int,
    rng: random.Random,
    *,
    margin: int = 2,
    keepout: Optional[Set[Point]] = None,
    keepout_margin: int = 2,
) -> None:
    """Block approximately ``n_cells`` cells with small random rectangles.

    Obstacles keep ``margin`` cells clear of the boundary so control pins
    (which live on the boundary) and their approaches stay routable, and
    ``keepout_margin`` cells clear of every ``keepout`` cell (the valves)
    — a real biochip is routable by construction, so obstacles never
    choke a valve's local escape capacity.  The final count is exact: the
    last rectangle is trimmed cell-wise.
    """
    if n_cells <= 0:
        return
    span_x = grid.width - 2 * margin
    span_y = grid.height - 2 * margin
    if span_x <= 0 or span_y <= 0:
        raise ValueError("grid too small for obstacles with boundary margin")
    keepout = keepout or set()

    def too_close(rect: Rect) -> bool:
        guard = rect.inflated(keepout_margin)
        return any(guard.contains(p) for p in keepout)

    placed = 0
    attempts = 0
    while placed < n_cells and attempts < 200 * n_cells + 100:
        attempts += 1
        w = rng.randint(1, min(4, span_x))
        h = rng.randint(1, min(4, span_y))
        x = rng.randint(margin, grid.width - margin - w)
        y = rng.randint(margin, grid.height - margin - h)
        rect = Rect(x, y, x + w - 1, y + h - 1)
        if too_close(rect):
            continue
        cells = [c for c in rect.cells() if not grid.is_obstacle(c)]
        if not cells:
            continue
        remaining = n_cells - placed
        for cell in cells[:remaining]:
            grid.set_obstacle(cell)
            placed += 1
    if placed < n_cells:
        raise GenerationError(f"could not place {n_cells} obstacle cells")


def _place_upper_obstacles(
    grid: RoutingGrid,
    rng: random.Random,
    fraction: float,
    *,
    keepout: Set[Point],
) -> None:
    """Block upper-layer cells correlated with the layer-0 obstacle map.

    Each layer ``z > 0`` receives ``fraction`` of the layer-0 obstacle
    cells mirrored straight up (fabricated structures span layers) plus
    the same number of independent random cells.  Columns above a
    ``keepout`` cell (the valves) stay clear so vias near terminals are
    never choked.
    """
    base = sorted(p for p in grid.obstacle_cells() if len(p) == 2)
    n_layer = int(len(base) * fraction)
    if n_layer <= 0:
        return
    for z in range(1, grid.layers):
        for p in rng.sample(base, n_layer):
            if p not in keepout:
                grid.set_obstacle(cell_point(p[0], p[1], z))
        placed = 0
        attempts = 0
        while placed < n_layer and attempts < 200 * n_layer + 100:
            attempts += 1
            x = rng.randint(0, grid.width - 1)
            y = rng.randint(0, grid.height - 1)
            if Point(x, y) in keepout:
                continue
            cell = cell_point(x, y, z)
            if grid.is_obstacle(cell):
                continue
            grid.set_obstacle(cell)
            placed += 1


def _pick_free_cell(
    grid: RoutingGrid,
    rng: random.Random,
    taken: Set[Point],
    *,
    box: Optional[Rect] = None,
    min_spacing: int = 2,
    attempts: int = 500,
) -> Optional[Point]:
    """Sample a free, untaken cell inside ``box`` keeping valve spacing."""
    extent = grid.extent().inflated(-2)  # margin for boundary pins
    search = box.intersect(extent) if box is not None else extent
    if search is None:
        search = extent
    for _ in range(attempts):
        x = rng.randint(search.xlo, search.xhi)
        y = rng.randint(search.ylo, search.yhi)
        p = Point(x, y)
        if not grid.is_free(p) or p in taken:
            continue
        if any(
            p.manhattan(q) < min_spacing for q in taken
        ):  # valves need channel room
            continue
        return p
    return None


def generate_design(
    name: str,
    width: int,
    height: int,
    *,
    clusters: Sequence[ClusterPlan],
    n_singletons: int,
    n_pins: int,
    n_obstacles: int,
    seed: int,
    time_steps: int = 10,
    core_fraction: float = 1.0,
    layers: int = 1,
    via_cost: int = 1,
    via_length: int = 1,
    upper_obstacle_fraction: float = 0.5,
) -> Design:
    """Generate a deterministic synthetic design.

    Args:
        name: design name.
        width, height: grid dimensions.
        clusters: planned multi-valve clusters (length-matching).
        n_singletons: additional single-valve nets.
        n_pins: candidate control pins, spread evenly along the boundary.
        n_obstacles: number of blocked cells.
        seed: RNG seed — equal seeds give identical designs.
        time_steps: activation-sequence length.
        core_fraction: fraction of each chip dimension within which
            cluster centres are placed (centred box).  Real biochips pack
            their valves into the functional core, which is what makes
            length-matched routing contentious; 1.0 spreads clusters over
            the whole chip, smaller values increase routing contention.
        layers: routing layers.  Valves and pins always live on layer 0;
            ``layers > 1`` adds upper routing layers whose obstacles are
            correlated with layer 0 (fabricated structures span layers).
        via_cost: search cost of one vertical (via) step.
        via_length: channel length contributed by one via step.
        upper_obstacle_fraction: fraction of the layer-0 obstacle cells
            mirrored onto each upper layer (the correlated part); the
            same fraction again is placed independently at random.

    Returns:
        A validated :class:`Design`.

    Determinism: a ``layers == 1`` call consumes the RNG stream exactly
    as before the layer axis existed, so planar designs are
    bit-identical across the refactor.
    """
    if not 0.0 < core_fraction <= 1.0:
        raise ValueError("core_fraction must lie in (0, 1]")
    if not 0.0 <= upper_obstacle_fraction <= 1.0:
        raise ValueError("upper_obstacle_fraction must lie in [0, 1]")
    rng = random.Random(seed)
    grid = RoutingGrid(
        width, height, layers, via_cost=via_cost, via_length=via_length
    )

    n_groups = len(clusters) + n_singletons
    sequences = _base_sequences(n_groups, time_steps)
    rng.shuffle(sequences)

    valves: List[Valve] = []
    lm_groups: List[List[int]] = []
    taken: Set[Point] = set()
    next_id = 0

    core_x = max(2, int(width * (1 - core_fraction) / 2))
    core_y = max(2, int(height * (1 - core_fraction) / 2))
    cx_lo, cx_hi = core_x, max(core_x, width - 1 - core_x)
    cy_lo, cy_hi = core_y, max(core_y, height - 1 - core_y)

    for ci, plan in enumerate(clusters):
        seq = sequences[ci]
        # Local box sized to the cluster, centred inside the chip core.
        radius = max(4, 3 * plan.size)
        members: List[int] = []
        for attempt in range(200):
            cx = rng.randint(cx_lo, cx_hi)
            cy = rng.randint(cy_lo, cy_hi)
            box = Rect(cx - radius, cy - radius, cx + radius, cy + radius)
            trial: List[Point] = []
            for _ in range(plan.size):
                p = _pick_free_cell(grid, rng, taken | set(trial), box=box)
                if p is None:
                    break
                trial.append(p)
            if len(trial) == plan.size:
                for p in trial:
                    valves.append(Valve(next_id, p, seq))
                    members.append(next_id)
                    taken.add(p)
                    next_id += 1
                break
        else:
            raise GenerationError(f"could not place cluster {ci} of design {name}")
        if plan.length_matching:
            lm_groups.append(members)

    for si in range(n_singletons):
        seq = sequences[len(clusters) + si]
        p = _pick_free_cell(grid, rng, taken)
        if p is None:
            raise GenerationError(
                f"could not place singleton valve in design {name}"
            )
        valves.append(Valve(next_id, p, seq))
        taken.add(p)
        next_id += 1

    # Obstacles go in *after* the valves, keeping a margin around every
    # valve so no terminal is choked or pocketed (fabricated chips are
    # routable by construction).
    _place_obstacles(grid, n_obstacles, rng, keepout=taken)
    if layers > 1:
        _place_upper_obstacles(
            grid, rng, upper_obstacle_fraction, keepout=taken
        )

    # Control pins: evenly spread over the free boundary cells.
    boundary = [p for p in grid.boundary_cells() if grid.is_free(p)]
    if n_pins > len(boundary):
        raise ValueError(f"design {name}: {n_pins} pins exceed free boundary cells")
    stride = len(boundary) / n_pins
    pins = [boundary[int(i * stride)] for i in range(n_pins)]

    design = Design(
        name=name,
        grid=grid,
        valves=valves,
        lm_groups=lm_groups,
        control_pins=pins,
        delta=1,
    )
    design.validate()
    return design


def generate_fpva(
    rows: int,
    cols: int,
    *,
    pitch: int = 3,
    margin: int = 3,
    n_pins: Optional[int] = None,
    layers: int = 1,
    via_cost: int = 1,
    via_length: int = 1,
    name: Optional[str] = None,
) -> Design:
    """Generate a fully programmable valve array (FPVA) design.

    An FPVA is a dense, regular ``rows x cols`` valve matrix in which
    every valve is independently addressable — the stress case for
    control-layer routing, since the inner valves are fenced in by
    their own neighbours and escape capacity is the binding constraint.
    Every valve is a singleton net (no length-matching groups) with a
    unique activation sequence, so the clustering stage recovers
    exactly ``rows * cols`` nets.

    Args:
        rows, cols: valve matrix shape.
        pitch: cell distance between adjacent valves (>= 2 keeps one
            routing track between columns).
        margin: clear cells between the outer valves and the boundary.
        n_pins: candidate control pins (default: one per valve, capped
            at the free boundary size).
        layers: routing layers (valves and pins stay on layer 0).
        via_cost: search cost of one vertical step.
        via_length: channel length contributed by one vertical step.
        name: design name (default ``fpva-{rows}x{cols}``).

    Returns:
        A validated :class:`Design` with no obstacles: the matrix itself
        is the congestion.
    """
    if rows < 1 or cols < 1:
        raise ValueError("FPVA needs at least a 1x1 valve matrix")
    if pitch < 2:
        raise ValueError("FPVA pitch must be at least 2")
    if margin < 1:
        raise ValueError("FPVA margin must be at least 1")
    width = 2 * margin + (cols - 1) * pitch + 1
    height = 2 * margin + (rows - 1) * pitch + 1
    grid = RoutingGrid(
        width, height, layers, via_cost=via_cost, via_length=via_length
    )
    count = rows * cols
    time_steps = max(4, count.bit_length())
    sequences = _base_sequences(count, time_steps)
    valves = [
        Valve(
            r * cols + c,
            Point(margin + c * pitch, margin + r * pitch),
            sequences[r * cols + c],
        )
        for r in range(rows)
        for c in range(cols)
    ]
    boundary = list(grid.boundary_cells())
    wanted = count if n_pins is None else n_pins
    wanted = min(wanted, len(boundary))
    if wanted < 1:
        raise ValueError("FPVA needs at least one control pin")
    stride = len(boundary) / wanted
    pins = [boundary[int(i * stride)] for i in range(wanted)]
    design = Design(
        name=name or f"fpva-{rows}x{cols}",
        grid=grid,
        valves=valves,
        lm_groups=[],
        control_pins=pins,
        delta=1,
    )
    design.validate()
    return design


def generate_fault_scenario(
    design: Design,
    *,
    n_cell_faults: int,
    n_stuck_valves: int = 0,
    n_via_faults: int = 0,
    seed: int,
    target_cells: Optional[Sequence[Point]] = None,
    event_stage: Optional[str] = None,
) -> "FaultMap":
    """Generate a deterministic physical-fault scenario for ``design``.

    Args:
        design: the design the faults hit.
        n_cell_faults: blocked-cell count.
        n_stuck_valves: stuck-valve count.
        n_via_faults: fused via columns (multi-layer designs only);
            drawn from the non-valve planar sites, always as static
            faults.
        seed: RNG seed — equal seeds give identical scenarios.
        target_cells: cells to draw the blockages from (benchmarks pass a
            result's routed cells here, so every fault is guaranteed to
            damage something); valve positions are excluded either way.
            When None, blockages are drawn from the free grid cells.
        event_stage: when set, every fault becomes a timed
            :class:`~repro.robustness.faultmap.FaultEvent` firing at this
            stage boundary instead of a static (pre-routing) fault.

    Returns:
        A validated :class:`~repro.robustness.faultmap.FaultMap`.

    Raises:
        GenerationError: the design has too few candidate cells/valves.
    """
    from repro.robustness.faultmap import FaultEvent, FaultMap

    rng = random.Random(seed)
    valve_cells = {v.position for v in design.valves}
    if target_cells is not None:
        pool = [p for p in target_cells if p not in valve_cells]
    else:
        grid = design.grid
        pool = [
            p
            for y in range(grid.height)
            for x in range(grid.width)
            if grid.is_free(p := Point(x, y)) and p not in valve_cells
        ]
    pool = sorted(set(pool))
    if n_cell_faults > len(pool):
        raise GenerationError(
            f"design {design.name}: {n_cell_faults} cell faults exceed the "
            f"{len(pool)} candidate cells"
        )
    valve_ids = sorted(v.id for v in design.valves)
    if n_stuck_valves > len(valve_ids):
        raise GenerationError(
            f"design {design.name}: {n_stuck_valves} stuck valves exceed "
            f"the {len(valve_ids)} valves"
        )
    cells = rng.sample(pool, n_cell_faults)
    stuck = rng.sample(valve_ids, n_stuck_valves)
    if event_stage is not None:
        events = [FaultEvent(stage=event_stage, cell=p) for p in cells]
        events += [FaultEvent(stage=event_stage, valve=v) for v in stuck]
        fm = FaultMap(events=events)
    else:
        fm = FaultMap(faulty_cells=cells, stuck_valves=stuck)
    if n_via_faults:
        grid = design.grid
        if grid.layers < 2:
            raise GenerationError(
                f"design {design.name}: via faults need a multi-layer grid"
            )
        sites = [
            p
            for y in range(grid.height)
            for x in range(grid.width)
            if (p := Point(x, y)) not in valve_cells and grid.via_allowed(p)
        ]
        if n_via_faults > len(sites):
            raise GenerationError(
                f"design {design.name}: {n_via_faults} via faults exceed "
                f"the {len(sites)} candidate sites"
            )
        for site in rng.sample(sites, n_via_faults):
            fm.add_via_stuck(site)
    fm.validate(design)
    return fm
