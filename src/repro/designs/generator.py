"""Deterministic synthetic design generation.

Generates routing instances with prescribed statistics: grid size,
obstacle cell count, per-cluster valve counts (length-matching clusters),
singleton valves, and candidate control pins on the chip boundary.
Valves of a cluster are placed close together (as in real biochips,
where a functional unit's valves are co-located); activation sequences
are constructed so the clustering stage recovers exactly the planned
clusters: members share their cluster's base sequence and base sequences
of different clusters are pairwise incompatible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Set

from repro.designs.design import Design
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.grid.grid import RoutingGrid
from repro.robustness.errors import GenerationError
from repro.valves.activation import ActivationSequence
from repro.valves.valve import Valve

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.robustness.faultmap import FaultMap


@dataclass(frozen=True)
class ClusterPlan:
    """Planned multi-valve cluster: member count and LM flag."""

    size: int
    length_matching: bool = True

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("planned clusters need at least two valves")


def _base_sequences(count: int, time_steps: int) -> List[ActivationSequence]:
    """Return ``count`` pairwise-incompatible activation sequences.

    Distinct binary encodings (no don't-cares) differ in at least one
    concrete step, which makes them incompatible by Definition 2.
    """
    if count > (1 << time_steps):
        raise ValueError(
            f"cannot encode {count} incompatible sequences in {time_steps} steps"
        )
    sequences = []
    for i in range(count):
        bits = format(i, f"0{time_steps}b")
        sequences.append(ActivationSequence(bits))
    return sequences


def _place_obstacles(
    grid: RoutingGrid,
    n_cells: int,
    rng: random.Random,
    *,
    margin: int = 2,
    keepout: Optional[Set[Point]] = None,
    keepout_margin: int = 2,
) -> None:
    """Block approximately ``n_cells`` cells with small random rectangles.

    Obstacles keep ``margin`` cells clear of the boundary so control pins
    (which live on the boundary) and their approaches stay routable, and
    ``keepout_margin`` cells clear of every ``keepout`` cell (the valves)
    — a real biochip is routable by construction, so obstacles never
    choke a valve's local escape capacity.  The final count is exact: the
    last rectangle is trimmed cell-wise.
    """
    if n_cells <= 0:
        return
    span_x = grid.width - 2 * margin
    span_y = grid.height - 2 * margin
    if span_x <= 0 or span_y <= 0:
        raise ValueError("grid too small for obstacles with boundary margin")
    keepout = keepout or set()

    def too_close(rect: Rect) -> bool:
        guard = rect.inflated(keepout_margin)
        return any(guard.contains(p) for p in keepout)

    placed = 0
    attempts = 0
    while placed < n_cells and attempts < 200 * n_cells + 100:
        attempts += 1
        w = rng.randint(1, min(4, span_x))
        h = rng.randint(1, min(4, span_y))
        x = rng.randint(margin, grid.width - margin - w)
        y = rng.randint(margin, grid.height - margin - h)
        rect = Rect(x, y, x + w - 1, y + h - 1)
        if too_close(rect):
            continue
        cells = [c for c in rect.cells() if not grid.is_obstacle(c)]
        if not cells:
            continue
        remaining = n_cells - placed
        for cell in cells[:remaining]:
            grid.set_obstacle(cell)
            placed += 1
    if placed < n_cells:
        raise GenerationError(f"could not place {n_cells} obstacle cells")


def _pick_free_cell(
    grid: RoutingGrid,
    rng: random.Random,
    taken: Set[Point],
    *,
    box: Optional[Rect] = None,
    min_spacing: int = 2,
    attempts: int = 500,
) -> Optional[Point]:
    """Sample a free, untaken cell inside ``box`` keeping valve spacing."""
    extent = grid.extent().inflated(-2)  # margin for boundary pins
    search = box.intersect(extent) if box is not None else extent
    if search is None:
        search = extent
    for _ in range(attempts):
        x = rng.randint(search.xlo, search.xhi)
        y = rng.randint(search.ylo, search.yhi)
        p = Point(x, y)
        if not grid.is_free(p) or p in taken:
            continue
        if any(
            p.manhattan(q) < min_spacing for q in taken
        ):  # valves need channel room
            continue
        return p
    return None


def generate_design(
    name: str,
    width: int,
    height: int,
    *,
    clusters: Sequence[ClusterPlan],
    n_singletons: int,
    n_pins: int,
    n_obstacles: int,
    seed: int,
    time_steps: int = 10,
    core_fraction: float = 1.0,
) -> Design:
    """Generate a deterministic synthetic design.

    Args:
        name: design name.
        width, height: grid dimensions.
        clusters: planned multi-valve clusters (length-matching).
        n_singletons: additional single-valve nets.
        n_pins: candidate control pins, spread evenly along the boundary.
        n_obstacles: number of blocked cells.
        seed: RNG seed — equal seeds give identical designs.
        time_steps: activation-sequence length.
        core_fraction: fraction of each chip dimension within which
            cluster centres are placed (centred box).  Real biochips pack
            their valves into the functional core, which is what makes
            length-matched routing contentious; 1.0 spreads clusters over
            the whole chip, smaller values increase routing contention.

    Returns:
        A validated :class:`Design`.
    """
    if not 0.0 < core_fraction <= 1.0:
        raise ValueError("core_fraction must lie in (0, 1]")
    rng = random.Random(seed)
    grid = RoutingGrid(width, height)

    n_groups = len(clusters) + n_singletons
    sequences = _base_sequences(n_groups, time_steps)
    rng.shuffle(sequences)

    valves: List[Valve] = []
    lm_groups: List[List[int]] = []
    taken: Set[Point] = set()
    next_id = 0

    core_x = max(2, int(width * (1 - core_fraction) / 2))
    core_y = max(2, int(height * (1 - core_fraction) / 2))
    cx_lo, cx_hi = core_x, max(core_x, width - 1 - core_x)
    cy_lo, cy_hi = core_y, max(core_y, height - 1 - core_y)

    for ci, plan in enumerate(clusters):
        seq = sequences[ci]
        # Local box sized to the cluster, centred inside the chip core.
        radius = max(4, 3 * plan.size)
        members: List[int] = []
        for attempt in range(200):
            cx = rng.randint(cx_lo, cx_hi)
            cy = rng.randint(cy_lo, cy_hi)
            box = Rect(cx - radius, cy - radius, cx + radius, cy + radius)
            trial: List[Point] = []
            for _ in range(plan.size):
                p = _pick_free_cell(grid, rng, taken | set(trial), box=box)
                if p is None:
                    break
                trial.append(p)
            if len(trial) == plan.size:
                for p in trial:
                    valves.append(Valve(next_id, p, seq))
                    members.append(next_id)
                    taken.add(p)
                    next_id += 1
                break
        else:
            raise GenerationError(f"could not place cluster {ci} of design {name}")
        if plan.length_matching:
            lm_groups.append(members)

    for si in range(n_singletons):
        seq = sequences[len(clusters) + si]
        p = _pick_free_cell(grid, rng, taken)
        if p is None:
            raise GenerationError(
                f"could not place singleton valve in design {name}"
            )
        valves.append(Valve(next_id, p, seq))
        taken.add(p)
        next_id += 1

    # Obstacles go in *after* the valves, keeping a margin around every
    # valve so no terminal is choked or pocketed (fabricated chips are
    # routable by construction).
    _place_obstacles(grid, n_obstacles, rng, keepout=taken)

    # Control pins: evenly spread over the free boundary cells.
    boundary = [p for p in grid.boundary_cells() if grid.is_free(p)]
    if n_pins > len(boundary):
        raise ValueError(f"design {name}: {n_pins} pins exceed free boundary cells")
    stride = len(boundary) / n_pins
    pins = [boundary[int(i * stride)] for i in range(n_pins)]

    design = Design(
        name=name,
        grid=grid,
        valves=valves,
        lm_groups=lm_groups,
        control_pins=pins,
        delta=1,
    )
    design.validate()
    return design


def generate_fault_scenario(
    design: Design,
    *,
    n_cell_faults: int,
    n_stuck_valves: int = 0,
    seed: int,
    target_cells: Optional[Sequence[Point]] = None,
    event_stage: Optional[str] = None,
) -> "FaultMap":
    """Generate a deterministic physical-fault scenario for ``design``.

    Args:
        design: the design the faults hit.
        n_cell_faults: blocked-cell count.
        n_stuck_valves: stuck-valve count.
        seed: RNG seed — equal seeds give identical scenarios.
        target_cells: cells to draw the blockages from (benchmarks pass a
            result's routed cells here, so every fault is guaranteed to
            damage something); valve positions are excluded either way.
            When None, blockages are drawn from the free grid cells.
        event_stage: when set, every fault becomes a timed
            :class:`~repro.robustness.faultmap.FaultEvent` firing at this
            stage boundary instead of a static (pre-routing) fault.

    Returns:
        A validated :class:`~repro.robustness.faultmap.FaultMap`.

    Raises:
        GenerationError: the design has too few candidate cells/valves.
    """
    from repro.robustness.faultmap import FaultEvent, FaultMap

    rng = random.Random(seed)
    valve_cells = {v.position for v in design.valves}
    if target_cells is not None:
        pool = [p for p in target_cells if p not in valve_cells]
    else:
        grid = design.grid
        pool = [
            p
            for y in range(grid.height)
            for x in range(grid.width)
            if grid.is_free(p := Point(x, y)) and p not in valve_cells
        ]
    pool = sorted(set(pool))
    if n_cell_faults > len(pool):
        raise GenerationError(
            f"design {design.name}: {n_cell_faults} cell faults exceed the "
            f"{len(pool)} candidate cells"
        )
    valve_ids = sorted(v.id for v in design.valves)
    if n_stuck_valves > len(valve_ids):
        raise GenerationError(
            f"design {design.name}: {n_stuck_valves} stuck valves exceed "
            f"the {len(valve_ids)} valves"
        )
    cells = rng.sample(pool, n_cell_faults)
    stuck = rng.sample(valve_ids, n_stuck_valves)
    if event_stage is not None:
        events = [FaultEvent(stage=event_stage, cell=p) for p in cells]
        events += [FaultEvent(stage=event_stage, valve=v) for v in stuck]
        fm = FaultMap(events=events)
    else:
        fm = FaultMap(faulty_cells=cells, stuck_valves=stuck)
    fm.validate(design)
    return fm
