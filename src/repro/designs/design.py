"""The design model: everything the routing problem is *given* (Section 2)."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.valves.valve import Valve


@dataclass
class Design:
    """One control-layer routing problem instance.

    Attributes:
        name: benchmark name (e.g. ``"Chip1"``).
        grid: routing grid with static obstacles, pitch = min channel
            width + spacing (the design rules of the problem statement).
        valves: all valves with coordinates and activation sequences.
        lm_groups: valve-id groups carrying the length-matching
            constraint (the clusters ``M(V)`` of the problem statement).
        control_pins: feasible control-pin positions ``CP``.
        delta: length-matching threshold δ.
    """

    name: str
    grid: RoutingGrid
    valves: List[Valve]
    lm_groups: List[List[int]] = field(default_factory=list)
    control_pins: List[Point] = field(default_factory=list)
    delta: int = 1

    def validate(self) -> None:
        """Check structural well-formedness; raises ValueError on defects."""
        ids = [v.id for v in self.valves]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate valve ids")
        lengths = {len(v.sequence) for v in self.valves}
        if len(lengths) > 1:
            # The paper: "the activation sequences for all the valves ...
            # are of equal length" (they come from one schedule).
            raise ValueError(
                f"activation sequences have mixed lengths {sorted(lengths)}"
            )
        positions = [v.position for v in self.valves]
        if len(set(positions)) != len(positions):
            raise ValueError("two valves share a grid cell")
        for valve in self.valves:
            if not self.grid.is_free(valve.position):
                raise ValueError(f"valve {valve.id} sits on an obstacle or off-chip")
        known = set(ids)
        seen = set()
        for group in self.lm_groups:
            if len(group) < 2:
                raise ValueError("length-matching groups need at least two valves")
            for vid in group:
                if vid not in known:
                    raise ValueError(f"length-matching group references valve {vid}")
                if vid in seen:
                    raise ValueError(f"valve {vid} in two length-matching groups")
                seen.add(vid)
        valve_cells = set(positions)
        for pin in self.control_pins:
            if not self.grid.is_free(pin):
                raise ValueError(f"control pin {pin} is blocked or off-chip")
            if pin in valve_cells:
                raise ValueError(f"control pin {pin} coincides with a valve")
        if self.delta < 0:
            raise ValueError("delta must be non-negative")

    def valve_by_id(self) -> Dict[int, Valve]:
        """Return an id -> valve lookup table."""
        return {v.id: v for v in self.valves}

    def canonical_hash(self) -> str:
        """Return the deterministic content hash of the design.

        The hash is computed over the canonical serialisation — the
        :func:`~repro.designs.io.design_to_json` document dumped with
        sorted keys and fixed separators — so it is invariant to JSON
        key order, whitespace/indentation, obstacle list order (the
        document sorts obstacles) and materialised-vs-defaulted optional
        fields.  Any *semantic* change (a moved valve, a different
        activation sequence, δ, an extra obstacle, a reshuffled
        length-matching group) produces a different hash.

        Valve and control-pin list *order* is deliberately part of the
        hash: stage iteration follows list order, so two designs that
        differ only there can route differently — and the service-layer
        result cache keyed on this hash must only ever return
        bit-identical results.
        """
        from repro.designs.io import design_to_json

        blob = json.dumps(
            design_to_json(self), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def with_layers(
        self, layers: int, *, via_cost: int = 1, via_length: int = 1
    ) -> "Design":
        """Return this design lifted onto a ``layers``-deep grid.

        Valves, pins, length-matching groups and the planar obstacle
        map carry over unchanged (obstacles keep their layer, so
        lifting a planar design leaves every upper layer open); the
        via keep-out sites carry over as well.  ``with_layers(1)`` on
        a planar design is an identical copy.
        """
        grid = RoutingGrid(
            self.grid.width,
            self.grid.height,
            layers,
            via_cost=via_cost,
            via_length=via_length,
        )
        grid.add_obstacles(self.grid.obstacle_cells())
        for site in self.grid.blocked_via_sites():
            grid.set_via_blocked(site)
        lifted = Design(
            name=self.name,
            grid=grid,
            valves=list(self.valves),
            lm_groups=[list(g) for g in self.lm_groups],
            control_pins=list(self.control_pins),
            delta=self.delta,
        )
        lifted.validate()
        return lifted

    @property
    def size_label(self) -> str:
        """Return the Table-1 style size string, e.g. ``"179x413"``."""
        return f"{self.grid.width}x{self.grid.height}"

    def stats(self) -> Dict[str, object]:
        """Return the Table-1 row for this design."""
        return {
            "design": self.name,
            "size": self.size_label,
            "n_valves": len(self.valves),
            "n_control_pins": len(self.control_pins),
            "n_obstacles": self.grid.obstacle_count(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Design({self.name}, {self.size_label}, {len(self.valves)} valves, "
            f"{len(self.control_pins)} pins, {self.grid.obstacle_count()} obs)"
        )
