"""JSON serialisation of designs.

The on-disk format is a plain JSON document so instances can be shared,
versioned and inspected:

.. code-block:: json

    {
      "name": "S1",
      "width": 12, "height": 12, "delta": 1,
      "obstacles": [[3, 4], ...],
      "valves": [{"id": 0, "x": 2, "y": 3, "sequence": "0100011010"}, ...],
      "lm_groups": [[0, 1], [2, 3]],
      "control_pins": [[0, 0], ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath
from typing import Any, Dict, Union

from repro.designs.design import Design
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.valves.activation import ActivationSequence
from repro.valves.valve import Valve


def design_to_json(design: Design) -> Dict[str, Any]:
    """Return the JSON-serialisable document for ``design``."""
    return {
        "name": design.name,
        "width": design.grid.width,
        "height": design.grid.height,
        "delta": design.delta,
        "obstacles": sorted([p.x, p.y] for p in design.grid.obstacle_cells()),
        "valves": [
            {"id": v.id, "x": v.position.x, "y": v.position.y, "sequence": v.sequence.steps}
            for v in design.valves
        ],
        "lm_groups": [list(g) for g in design.lm_groups],
        "control_pins": [[p.x, p.y] for p in design.control_pins],
    }


def design_from_json(doc: Dict[str, Any]) -> Design:
    """Rebuild a :class:`Design` from its JSON document (validated)."""
    grid = RoutingGrid(doc["width"], doc["height"])
    grid.add_obstacles(Point(x, y) for x, y in doc.get("obstacles", []))
    valves = [
        Valve(item["id"], Point(item["x"], item["y"]), ActivationSequence(item["sequence"]))
        for item in doc["valves"]
    ]
    design = Design(
        name=doc["name"],
        grid=grid,
        valves=valves,
        lm_groups=[list(g) for g in doc.get("lm_groups", [])],
        control_pins=[Point(x, y) for x, y in doc.get("control_pins", [])],
        delta=int(doc.get("delta", 1)),
    )
    design.validate()
    return design


def save_design(design: Design, path: Union[str, FilePath]) -> None:
    """Write ``design`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(design_to_json(design), handle, indent=1)


def load_design(path: Union[str, FilePath]) -> Design:
    """Read a design back from JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        return design_from_json(json.load(handle))
