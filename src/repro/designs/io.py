"""JSON serialisation of designs.

The on-disk format is a plain JSON document so instances can be shared,
versioned and inspected:

.. code-block:: json

    {
      "name": "S1",
      "width": 12, "height": 12, "delta": 1,
      "obstacles": [[3, 4], ...],
      "valves": [{"id": 0, "x": 2, "y": 3, "sequence": "0100011010"}, ...],
      "lm_groups": [[0, 1], [2, 3]],
      "control_pins": [[0, 0], ...]
    }

Multi-layer designs additionally carry ``layers``, ``via_cost``,
``via_length`` and ``via_blocked`` (planar keep-out columns), and their
obstacle entries may be ``[x, y, z]`` triples; all four keys are
omitted at their single-layer defaults so planar documents round-trip
byte-identically.
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath
from typing import Any, Dict, List, Optional, Union

from repro.designs.design import Design
from repro.geometry.point import Point, cell_point
from repro.grid.grid import RoutingGrid
from repro.robustness.errors import DesignFormatError
from repro.valves.activation import ActivationSequence
from repro.valves.valve import Valve


def design_to_json(design: Design) -> Dict[str, Any]:
    """Return the JSON-serialisable document for ``design``.

    The layer-axis fields (``layers``, ``via_cost``, ``via_length``,
    ``via_blocked``) are emitted only when they differ from the planar
    defaults, so single-layer documents — and their canonical hashes —
    are byte-identical to the pre-layer-axis schema.  Layer-0 obstacle
    cells serialise as ``[x, y]``, upper-layer ones as ``[x, y, z]``.
    """
    grid = design.grid
    doc: Dict[str, Any] = {
        "name": design.name,
        "width": grid.width,
        "height": grid.height,
        "delta": design.delta,
        "obstacles": sorted(list(p) for p in grid.obstacle_cells()),
        "valves": [
            {"id": v.id, "x": v.position.x, "y": v.position.y, "sequence": v.sequence.steps}
            for v in design.valves
        ],
        "lm_groups": [list(g) for g in design.lm_groups],
        "control_pins": [[p.x, p.y] for p in design.control_pins],
    }
    if grid.layers != 1:
        doc["layers"] = grid.layers
    if grid.via_cost != 1:
        doc["via_cost"] = grid.via_cost
    if grid.via_length != 1:
        doc["via_length"] = grid.via_length
    blocked_vias = grid.blocked_via_sites()
    if blocked_vias:
        doc["via_blocked"] = sorted([p.x, p.y] for p in blocked_vias)
    return doc


def _field(
    doc: Dict[str, Any],
    name: str,
    source: Optional[str],
    label: Optional[str] = None,
) -> Any:
    """Fetch a required field, diagnosing its absence precisely."""
    try:
        return doc[name]
    except (KeyError, TypeError) as exc:
        raise DesignFormatError(
            "missing required field", field=label or name, path=source
        ) from exc


def _int_field(
    doc: Dict[str, Any],
    name: str,
    source: Optional[str],
    label: Optional[str] = None,
) -> int:
    value = _field(doc, name, source, label)
    if isinstance(value, bool) or not isinstance(value, int):
        raise DesignFormatError(
            f"expected an integer, got {type(value).__name__}",
            field=label or name,
            path=source,
        )
    return value


def _point_list(
    value: Any,
    name: str,
    source: Optional[str],
    *,
    allow_z: bool = False,
) -> List[Point]:
    points: List[Point] = []
    try:
        for pair in value:
            if allow_z and len(pair) == 3:
                x, y, z = pair
                points.append(cell_point(int(x), int(y), int(z)))
                continue
            x, y = pair
            points.append(Point(int(x), int(y)))
    except (TypeError, ValueError) as exc:
        raise DesignFormatError(
            "expected a list of [x, y] pairs"
            + (" or [x, y, z] triples" if allow_z else ""),
            field=f"{name}[{len(points)}]",
            path=source,
        ) from exc
    return points


def design_from_json(
    doc: Dict[str, Any], *, source: Optional[str] = None
) -> Design:
    """Rebuild a :class:`Design` from its JSON document (validated).

    Args:
        doc: the parsed JSON document.
        source: originating file path, named in error messages.

    Raises:
        DesignFormatError: the document is malformed — the error names
            the offending field (and ``source``, when given) instead of
            surfacing a raw ``KeyError``/``TypeError``.
    """
    if not isinstance(doc, dict):
        raise DesignFormatError(
            f"design document must be a JSON object, "
            f"got {type(doc).__name__}",
            path=source,
        )
    try:
        layers = int(doc.get("layers", 1))
        grid = RoutingGrid(
            _int_field(doc, "width", source),
            _int_field(doc, "height", source),
            layers,
            via_cost=int(doc.get("via_cost", 1)),
            via_length=int(doc.get("via_length", 1)),
        )
    except ValueError as exc:
        if isinstance(exc, DesignFormatError):
            raise
        raise DesignFormatError(
            str(exc), field="width/height", path=source
        ) from exc
    try:
        grid.add_obstacles(
            _point_list(
                doc.get("obstacles", []), "obstacles", source, allow_z=True
            )
        )
    except ValueError as exc:
        if isinstance(exc, DesignFormatError):
            raise
        raise DesignFormatError(str(exc), field="obstacles", path=source) from exc
    try:
        for site in _point_list(
            doc.get("via_blocked", []), "via_blocked", source
        ):
            grid.set_via_blocked(site)
    except ValueError as exc:
        if isinstance(exc, DesignFormatError):
            raise
        raise DesignFormatError(
            str(exc), field="via_blocked", path=source
        ) from exc
    valve_docs = _field(doc, "valves", source)
    if not isinstance(valve_docs, list):
        raise DesignFormatError(
            f"expected a list of valve objects, got {type(valve_docs).__name__}",
            field="valves",
            path=source,
        )
    valves = []
    for idx, item in enumerate(valve_docs):
        label = f"valves[{idx}]"
        if not isinstance(item, dict):
            raise DesignFormatError(
                f"expected a valve object, got {type(item).__name__}",
                field=label,
                path=source,
            )
        try:
            valves.append(
                Valve(
                    _int_field(item, "id", source, f"{label}.id"),
                    Point(
                        _int_field(item, "x", source, f"{label}.x"),
                        _int_field(item, "y", source, f"{label}.y"),
                    ),
                    ActivationSequence(
                        _field(item, "sequence", source, f"{label}.sequence")
                    ),
                )
            )
        except DesignFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise DesignFormatError(
                f"malformed valve entry ({exc})", field=label, path=source
            ) from exc
    name = _field(doc, "name", source)
    if not isinstance(name, str):
        raise DesignFormatError(
            f"expected a string, got {type(name).__name__}",
            field="name",
            path=source,
        )
    try:
        lm_groups = [list(g) for g in doc.get("lm_groups", [])]
    except TypeError as exc:
        raise DesignFormatError(
            "expected a list of valve-id lists", field="lm_groups", path=source
        ) from exc
    try:
        delta = int(doc.get("delta", 1))
    except (TypeError, ValueError) as exc:
        raise DesignFormatError(
            "expected an integer", field="delta", path=source
        ) from exc
    design = Design(
        name=name,
        grid=grid,
        valves=valves,
        lm_groups=lm_groups,
        control_pins=_point_list(
            doc.get("control_pins", []), "control_pins", source
        ),
        delta=delta,
    )
    try:
        design.validate()
    except DesignFormatError:
        raise
    except (TypeError, ValueError, KeyError) as exc:
        raise DesignFormatError(f"invalid design: {exc}", path=source) from exc
    return design


def save_design(design: Design, path: Union[str, FilePath]) -> None:
    """Write ``design`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(design_to_json(design), handle, indent=1)


def load_design(path: Union[str, FilePath]) -> Design:
    """Read a design back from JSON.

    Raises:
        DesignFormatError: the file is not valid JSON or the document is
            malformed; the error names the file and offending field.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DesignFormatError(
                f"not valid JSON ({exc})", path=str(path)
            ) from exc
    return design_from_json(doc, source=str(path))
