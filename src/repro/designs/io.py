"""JSON serialisation of designs.

The on-disk format is a plain JSON document so instances can be shared,
versioned and inspected:

.. code-block:: json

    {
      "name": "S1",
      "width": 12, "height": 12, "delta": 1,
      "obstacles": [[3, 4], ...],
      "valves": [{"id": 0, "x": 2, "y": 3, "sequence": "0100011010"}, ...],
      "lm_groups": [[0, 1], [2, 3]],
      "control_pins": [[0, 0], ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath
from typing import Any, Dict, List, Optional, Union

from repro.designs.design import Design
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.robustness.errors import DesignFormatError
from repro.valves.activation import ActivationSequence
from repro.valves.valve import Valve


def design_to_json(design: Design) -> Dict[str, Any]:
    """Return the JSON-serialisable document for ``design``."""
    return {
        "name": design.name,
        "width": design.grid.width,
        "height": design.grid.height,
        "delta": design.delta,
        "obstacles": sorted([p.x, p.y] for p in design.grid.obstacle_cells()),
        "valves": [
            {"id": v.id, "x": v.position.x, "y": v.position.y, "sequence": v.sequence.steps}
            for v in design.valves
        ],
        "lm_groups": [list(g) for g in design.lm_groups],
        "control_pins": [[p.x, p.y] for p in design.control_pins],
    }


def _field(
    doc: Dict[str, Any],
    name: str,
    source: Optional[str],
    label: Optional[str] = None,
) -> Any:
    """Fetch a required field, diagnosing its absence precisely."""
    try:
        return doc[name]
    except (KeyError, TypeError) as exc:
        raise DesignFormatError(
            "missing required field", field=label or name, path=source
        ) from exc


def _int_field(
    doc: Dict[str, Any],
    name: str,
    source: Optional[str],
    label: Optional[str] = None,
) -> int:
    value = _field(doc, name, source, label)
    if isinstance(value, bool) or not isinstance(value, int):
        raise DesignFormatError(
            f"expected an integer, got {type(value).__name__}",
            field=label or name,
            path=source,
        )
    return value


def _point_list(value: Any, name: str, source: Optional[str]) -> List[Point]:
    points: List[Point] = []
    try:
        for pair in value:
            x, y = pair
            points.append(Point(int(x), int(y)))
    except (TypeError, ValueError) as exc:
        raise DesignFormatError(
            "expected a list of [x, y] pairs",
            field=f"{name}[{len(points)}]",
            path=source,
        ) from exc
    return points


def design_from_json(
    doc: Dict[str, Any], *, source: Optional[str] = None
) -> Design:
    """Rebuild a :class:`Design` from its JSON document (validated).

    Args:
        doc: the parsed JSON document.
        source: originating file path, named in error messages.

    Raises:
        DesignFormatError: the document is malformed — the error names
            the offending field (and ``source``, when given) instead of
            surfacing a raw ``KeyError``/``TypeError``.
    """
    if not isinstance(doc, dict):
        raise DesignFormatError(
            f"design document must be a JSON object, "
            f"got {type(doc).__name__}",
            path=source,
        )
    try:
        grid = RoutingGrid(
            _int_field(doc, "width", source), _int_field(doc, "height", source)
        )
    except ValueError as exc:
        if isinstance(exc, DesignFormatError):
            raise
        raise DesignFormatError(
            str(exc), field="width/height", path=source
        ) from exc
    try:
        grid.add_obstacles(
            _point_list(doc.get("obstacles", []), "obstacles", source)
        )
    except ValueError as exc:
        if isinstance(exc, DesignFormatError):
            raise
        raise DesignFormatError(str(exc), field="obstacles", path=source) from exc
    valve_docs = _field(doc, "valves", source)
    if not isinstance(valve_docs, list):
        raise DesignFormatError(
            f"expected a list of valve objects, got {type(valve_docs).__name__}",
            field="valves",
            path=source,
        )
    valves = []
    for idx, item in enumerate(valve_docs):
        label = f"valves[{idx}]"
        if not isinstance(item, dict):
            raise DesignFormatError(
                f"expected a valve object, got {type(item).__name__}",
                field=label,
                path=source,
            )
        try:
            valves.append(
                Valve(
                    _int_field(item, "id", source, f"{label}.id"),
                    Point(
                        _int_field(item, "x", source, f"{label}.x"),
                        _int_field(item, "y", source, f"{label}.y"),
                    ),
                    ActivationSequence(
                        _field(item, "sequence", source, f"{label}.sequence")
                    ),
                )
            )
        except DesignFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise DesignFormatError(
                f"malformed valve entry ({exc})", field=label, path=source
            ) from exc
    name = _field(doc, "name", source)
    if not isinstance(name, str):
        raise DesignFormatError(
            f"expected a string, got {type(name).__name__}",
            field="name",
            path=source,
        )
    try:
        lm_groups = [list(g) for g in doc.get("lm_groups", [])]
    except TypeError as exc:
        raise DesignFormatError(
            "expected a list of valve-id lists", field="lm_groups", path=source
        ) from exc
    try:
        delta = int(doc.get("delta", 1))
    except (TypeError, ValueError) as exc:
        raise DesignFormatError(
            "expected an integer", field="delta", path=source
        ) from exc
    design = Design(
        name=name,
        grid=grid,
        valves=valves,
        lm_groups=lm_groups,
        control_pins=_point_list(
            doc.get("control_pins", []), "control_pins", source
        ),
        delta=delta,
    )
    try:
        design.validate()
    except DesignFormatError:
        raise
    except (TypeError, ValueError, KeyError) as exc:
        raise DesignFormatError(f"invalid design: {exc}", path=source) from exc
    return design


def save_design(design: Design, path: Union[str, FilePath]) -> None:
    """Write ``design`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(design_to_json(design), handle, indent=1)


def load_design(path: Union[str, FilePath]) -> Design:
    """Read a design back from JSON.

    Raises:
        DesignFormatError: the file is not valid JSON or the document is
            malformed; the error names the file and offending field.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DesignFormatError(
                f"not valid JSON ({exc})", path=str(path)
            ) from exc
    return design_from_json(doc, source=str(path))
