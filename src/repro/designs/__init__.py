"""Benchmark designs: the Table-1 suite and a synthetic generator.

The paper evaluates on two real biochips (Chip1, Chip2) and five
synthesized testcases (S1-S5) whose layouts were never published — only
their parameters (grid size, valve count, candidate control pins,
obstacle cells; Table 1) and cluster counts (Table 2).  This package
generates deterministic synthetic designs with exactly those published
statistics; see DESIGN.md for the substitution rationale.
"""

from repro.designs.design import Design
from repro.designs.generator import (
    ClusterPlan,
    generate_design,
    generate_fault_scenario,
    generate_fpva,
)
from repro.designs.io import design_from_json, design_to_json, load_design, save_design
from repro.designs.perturb import add_obstacle_noise, jitter_valves, perturbation_family
from repro.designs.stress import CONTENTION_LEVELS, stress_design, stress_family
from repro.designs.suite import (
    TABLE1_PARAMETERS,
    chip1,
    chip2,
    design_by_name,
    s1,
    s2,
    s3,
    s4,
    s5,
    table1_suite,
)

__all__ = [
    "Design",
    "ClusterPlan",
    "generate_design",
    "generate_fault_scenario",
    "generate_fpva",
    "design_to_json",
    "design_from_json",
    "save_design",
    "load_design",
    "chip1",
    "chip2",
    "s1",
    "s2",
    "s3",
    "s4",
    "s5",
    "table1_suite",
    "design_by_name",
    "TABLE1_PARAMETERS",
    "stress_design",
    "stress_family",
    "CONTENTION_LEVELS",
    "jitter_valves",
    "add_obstacle_noise",
    "perturbation_family",
]
