"""Stress designs: a contention knob for routability studies.

The published chips' difficulty comes from valve density in the
functional core; our synthetic suite recreates it with the generator's
``core_fraction``.  This module exposes that axis directly: a family of
designs identical except for how tightly the clusters are packed, used
by ``benchmarks/bench_contention.py`` to chart matched clusters and
completion against contention — the study that calibrated the suite
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List

from repro.designs.design import Design
from repro.designs.generator import ClusterPlan, generate_design

CONTENTION_LEVELS = {
    "open": 1.0,
    "mild": 0.5,
    "packed": 0.25,
    "dense": 0.15,
    "extreme": 0.10,
}
"""Named core fractions from free placement to heavy contention."""


def stress_design(
    contention: str = "packed",
    *,
    scale: int = 2,
    seed: int = 7000,
) -> Design:
    """Build one stress design.

    Args:
        contention: one of :data:`CONTENTION_LEVELS`.
        scale: linear size factor; the chip is ``60*scale`` squared with
            ``3*scale`` clusters and ``2*scale`` singletons.
        seed: RNG seed.
    """
    try:
        fraction = CONTENTION_LEVELS[contention]
    except KeyError:
        raise ValueError(
            f"unknown contention level {contention!r}; "
            f"choose from {sorted(CONTENTION_LEVELS)}"
        ) from None
    side = 60 * scale
    n_clusters = 3 * scale
    sizes = [2 + (i % 3) for i in range(n_clusters)]  # sizes 2-4
    return generate_design(
        f"stress-{contention}-x{scale}",
        side,
        side,
        clusters=[ClusterPlan(s) for s in sizes],
        n_singletons=2 * scale,
        n_pins=20 * scale,
        n_obstacles=10 * scale * scale,
        seed=seed + scale,
        core_fraction=fraction,
    )


def stress_family(scale: int = 2, seed: int = 7000) -> List[Design]:
    """Return the full contention family at one scale."""
    return [
        stress_design(level, scale=scale, seed=seed)
        for level in CONTENTION_LEVELS
    ]
