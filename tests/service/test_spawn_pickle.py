"""Regression: core objects survive a multiprocessing *spawn* round trip.

The service worker pool may run under any start method; ``spawn`` is the
strictest (everything crosses the process boundary by pickle, nothing is
inherited).  Each object is shipped TO a spawn child as a call argument,
pickled back BY the child, and compared against the original — so both
directions of the boundary are exercised with the real machinery, not an
in-process ``pickle.dumps`` approximation.

A shared session-scoped pool keeps this affordable: one interpreter
start (~0.5 s) for the whole module.
"""

import pickle

import pytest

from repro.core import PacorConfig, run_method
from repro.designs import design_by_name
from repro.geometry import Point
from repro.robustness.budget import Budget
from repro.robustness.checkpoint import Checkpoint
from repro.robustness.faultmap import FaultEvent, FaultMap
from repro.service.jobs import JobRecord, JobState


@pytest.fixture(scope="module")
def spawn_pool():
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        yield pool


def spawn_roundtrip(pool, obj):
    """Ship ``obj`` to the spawn child; get it pickled back and rebuilt."""
    blob = pool.apply(pickle.dumps, (obj,))
    return pickle.loads(blob)


def test_pacor_config_roundtrips(spawn_pool):
    config = PacorConfig(
        k_candidates=6, wall_clock_budget_s=12.5, astar_expansion_budget=99
    )
    back = spawn_roundtrip(spawn_pool, config)
    assert back == config
    assert back.to_json() == config.to_json()


def test_fault_map_roundtrips(spawn_pool):
    fault_map = FaultMap(
        faulty_cells=[Point(3, 4)],
        stuck_valves=[2],
        events=[FaultEvent(stage="lm-routing", cell=Point(5, 6))],
    )
    back = spawn_roundtrip(spawn_pool, fault_map)
    assert back.to_json() == fault_map.to_json()


def test_checkpoint_roundtrips(spawn_pool):
    # A real mid-flow checkpoint from a budget-interrupted run: the
    # densest object crossing the boundary (occupancy, nets, incidents).
    design = design_by_name("S3")
    result = run_method(
        design,
        "PACOR",
        PacorConfig(astar_expansion_budget=200),
    )
    assert result.checkpoint is not None
    checkpoint = Checkpoint.from_json(result.checkpoint)
    back = spawn_roundtrip(spawn_pool, checkpoint)
    assert back.to_json() == checkpoint.to_json()


def test_design_roundtrips(spawn_pool):
    from repro.designs import design_to_json

    design = design_by_name("S2")
    back = spawn_roundtrip(spawn_pool, design)
    assert design_to_json(back) == design_to_json(design)
    assert back.canonical_hash() == design.canonical_hash()


def test_result_roundtrips(spawn_pool):
    result = run_method(design_by_name("S1"), "PACOR", PacorConfig())
    back = spawn_roundtrip(spawn_pool, result)
    assert back.to_json() == result.to_json()


def test_budget_roundtrips(spawn_pool):
    budget = Budget(wall_clock_s=30.0, astar_expansions=1000)
    budget.charge_expansions(7)
    back = spawn_roundtrip(spawn_pool, budget)
    assert back.astar_expansions == budget.astar_expansions
    assert back.expansions_used == budget.expansions_used


def test_job_record_roundtrips(spawn_pool):
    record = JobRecord(
        job_id="j000007",
        seq=7,
        state=JobState.QUEUED,
        design_name="S1",
        design_hash="a" * 64,
        method="PACOR",
        qos="standard",
        priority=1,
        config={"k_candidates": 4},
        budget={"wall_clock_s": 300.0},
        cache_key="b" * 64,
    )
    back = spawn_roundtrip(spawn_pool, record)
    assert back == record
