"""End-to-end service tests: daemon, worker pool, HTTP API, cache.

The acceptance bar: results served through the daemon are bit-identical
(everything except wall-clock runtime) to running ``pacor route``
directly, concurrency notwithstanding, and an identical re-submission is
answered from the cache without re-routing.
"""

import json

import pytest

from repro.core import PacorConfig, run_method
from repro.designs import design_by_name, design_to_json
from repro.robustness.errors import JobFormatError, ServiceError
from repro.service import (
    JobState,
    PacorService,
    ServiceAPIServer,
    ServiceClient,
)


def canonical(result_doc):
    """Result document minus wall-clock noise, as a comparable string."""
    doc = json.loads(json.dumps(result_doc))
    doc.get("summary", {}).pop("runtime_s", None)
    return json.dumps(doc, sort_keys=True)


def direct_baseline(design_name, method="PACOR"):
    design = design_by_name(design_name)
    return run_method(design, method, PacorConfig()).to_json()


@pytest.fixture
def service(tmp_path):
    svc = PacorService(tmp_path / "svc", workers=3)
    yield svc
    svc.stop(graceful=False, timeout=10.0)


class TestRouting:
    def test_concurrent_suite_bit_identical_to_direct(self, service):
        """S1..S5 through the daemon == direct runs, modulo runtime."""
        names = ["S1", "S2", "S3", "S4", "S5"]
        records = [
            service.submit(design_to_json(design_by_name(name)))
            for name in names
        ]
        service.start()
        assert service.drain(timeout=120.0)
        for name, submitted in zip(names, records):
            record = service.job(submitted.job_id)
            assert record.state == JobState.SUCCEEDED, record.error
            assert record.degraded is False
            served = service.result_doc(record.job_id)
            assert canonical(served) == canonical(direct_baseline(name))
            # The summary copied onto the record matches the result.
            assert record.summary["design"] == name

    def test_job_artifacts_written(self, service):
        record = service.submit(design_to_json(design_by_name("S1")))
        service.start()
        assert service.drain(timeout=60.0)
        assert service.trace_lines(record.job_id)
        assert service.store.metrics_path(record.job_id).is_file()
        events = service.events(record.job_id)
        statuses = [
            e["status"] for e in events["events"] if e["kind"] == "status"
        ]
        assert statuses[0] == "queued"
        assert "settled" in statuses
        span_names = {
            e["name"] for e in events["events"] if e["kind"] == "span"
        }
        assert "route" in span_names  # the flow span reached the stream


class TestSpawnStartMethod:
    def test_daemon_routes_under_spawn(self, tmp_path):
        """The worker entry point survives the strictest start method."""
        service = PacorService(tmp_path, workers=1, start_method="spawn")
        record = service.submit(design_to_json(design_by_name("S1")))
        service.start()
        try:
            assert service.drain(timeout=120.0)
            final = service.job(record.job_id)
            assert final.state == JobState.SUCCEEDED, final.error
            assert canonical(service.result_doc(record.job_id)) == canonical(
                direct_baseline("S1")
            )
        finally:
            service.stop(graceful=False, timeout=10.0)


class TestCache:
    def test_resubmit_is_answered_from_cache(self, service):
        doc = design_to_json(design_by_name("S1"))
        first = service.submit(doc)
        service.start()
        assert service.drain(timeout=60.0)
        again = service.submit(doc)
        # Settled synchronously inside submit: no worker, no queueing.
        assert again.state == JobState.SUCCEEDED
        assert again.cached is True
        assert again.attempts == 0
        assert canonical(service.result_doc(again.job_id)) == canonical(
            service.result_doc(first.job_id)
        )
        counters = service.metrics.counter_values()
        assert counters["service.cache_hits"] == 1
        assert counters["service.cache_stores"] == 1

    def test_cache_distinguishes_method_and_config(self, service):
        doc = design_to_json(design_by_name("S1"))
        service.start()
        service.submit(doc)
        assert service.drain(timeout=60.0)
        other_method = service.submit(doc, method="w/o Sel")
        assert other_method.cached is False
        other_config = service.submit(doc, config={"k_candidates": 2})
        assert other_config.cached is False

    def test_budget_overrides_do_not_split_the_cache(self, service):
        """Different QoS tiers share cache entries (budgets are excluded)."""
        doc = design_to_json(design_by_name("S1"))
        service.start()
        service.submit(doc, qos="standard")
        assert service.drain(timeout=60.0)
        hit = service.submit(doc, qos="batch")
        assert hit.cached is True


class TestValidation:
    def test_bad_design_rejected(self, service):
        from repro.robustness.errors import DesignFormatError

        with pytest.raises(DesignFormatError):
            service.submit({"not": "a design"})

    def test_unknown_method_rejected(self, service):
        doc = design_to_json(design_by_name("S1"))
        with pytest.raises(ServiceError, match="unknown method"):
            service.submit(doc, method="Sorcery")

    def test_unknown_qos_rejected(self, service):
        doc = design_to_json(design_by_name("S1"))
        with pytest.raises(ServiceError, match="unknown qos"):
            service.submit(doc, qos="platinum")

    def test_unknown_budget_field_rejected(self, service):
        doc = design_to_json(design_by_name("S1"))
        with pytest.raises(ServiceError, match="unknown budget field"):
            service.submit(doc, budget={"cpu_cycles": 5})

    def test_unknown_job_raises(self, service):
        with pytest.raises(JobFormatError, match="no such job"):
            service.job("j999999")


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        service = PacorService(tmp_path, workers=1)
        doc = design_to_json(design_by_name("S1"))
        first = service.submit(doc)
        second = service.submit(
            design_to_json(design_by_name("S2"))
        )
        cancelled = service.cancel(second.job_id)
        assert cancelled.state == JobState.CANCELLED
        service.start()
        try:
            assert service.drain(timeout=60.0)
            assert service.job(first.job_id).state == JobState.SUCCEEDED
            assert service.job(second.job_id).state == JobState.CANCELLED
            counters = service.metrics.counter_values()
            assert counters["service.cancellations"] == 1
        finally:
            service.stop(graceful=False, timeout=10.0)

    def test_cancel_settled_job_rejected(self, service):
        record = service.submit(design_to_json(design_by_name("S1")))
        service.start()
        assert service.drain(timeout=60.0)
        with pytest.raises(ServiceError, match="cannot be cancelled"):
            service.cancel(record.job_id)


class TestRecovery:
    def test_queued_jobs_survive_daemon_restart(self, tmp_path):
        root = tmp_path / "svc"
        before = PacorService(root, workers=1)
        record = before.submit(design_to_json(design_by_name("S1")))
        # The daemon dies without ever dispatching (never started).
        del before
        after = PacorService(root, workers=1)
        assert service_queue_contains(after, record.job_id)
        after.start()
        try:
            assert after.drain(timeout=60.0)
            assert after.job(record.job_id).state == JobState.SUCCEEDED
        finally:
            after.stop(graceful=False, timeout=10.0)

    def test_running_orphan_without_checkpoint_requeued(self, tmp_path):
        root = tmp_path / "svc"
        before = PacorService(root, workers=1)
        record = before.submit(design_to_json(design_by_name("S1")))
        # Simulate a daemon that died mid-dispatch: record says running,
        # but no worker (and no parked checkpoint) exists.
        record.state = JobState.RUNNING
        before.store.save(record)
        del before
        after = PacorService(root, workers=1)
        requeued = after.job(record.job_id)
        assert requeued.state == JobState.QUEUED
        assert after.metrics.counter_values()["service.recovered_jobs"] == 1


def service_queue_contains(service, job_id):
    return job_id in service.queue


class TestHTTPAPI:
    @pytest.fixture
    def client(self, service):
        server = ServiceAPIServer(service)
        server.start()
        service.start()
        yield ServiceClient(server.url, timeout=30.0)
        server.stop()

    def test_health(self, client):
        doc = client.health()
        assert doc["status"] == "ok"
        assert doc["api_version"] == "v1"

    def test_submit_wait_result_roundtrip(self, client):
        doc = design_to_json(design_by_name("S2"))
        record = client.submit(doc)
        assert record["state"] in ("queued", "running")
        settled = client.wait(record["job_id"], timeout=60.0)
        assert settled["state"] == "succeeded"
        served = client.result(record["job_id"])
        assert canonical(served) == canonical(direct_baseline("S2"))

    def test_jobs_listing_and_stats(self, client):
        record = client.submit(design_to_json(design_by_name("S1")))
        client.wait(record["job_id"], timeout=60.0)
        listed = client.jobs()
        assert [r["job_id"] for r in listed] == [record["job_id"]]
        stats = client.stats()
        assert stats["counters"]["service.jobs_submitted"] == 1

    def test_events_stream_and_trace(self, client):
        record = client.submit(design_to_json(design_by_name("S1")))
        client.wait(record["job_id"], timeout=60.0)
        page = client.events(record["job_id"])
        assert page["cursor"] > 0
        kinds = {e["kind"] for e in page["events"]}
        assert "status" in kinds
        # Incremental cursor: nothing new after the end.
        rest = client.events(record["job_id"], after=page["cursor"])
        assert rest["events"] == []
        assert client.trace(record["job_id"])

    def test_follow_events_terminates_when_settled(self, client):
        record = client.submit(design_to_json(design_by_name("S1")))
        seen = list(client.follow_events(record["job_id"], timeout=60.0))
        statuses = [
            e["status"] for e in seen if e.get("kind") == "status"
        ]
        assert "settled" in statuses

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.job("j999999")

    def test_malformed_submission_is_400(self, client):
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.submit({"not": "a design"})

    def test_result_of_unfinished_job_is_409(self, service):
        server = ServiceAPIServer(service)
        server.start()
        try:
            # Dispatcher not started: the job stays queued.
            client = ServiceClient(server.url)
            record = client.submit(design_to_json(design_by_name("S1")))
            with pytest.raises(ServiceError, match="HTTP 409"):
                client.result(record["job_id"])
        finally:
            server.stop()
