"""Unit tests for the service job records and the on-disk job store."""

import json

import pytest

from repro.designs import design_by_name, design_to_json
from repro.robustness.errors import JobFormatError, PacorError
from repro.service.jobs import (
    ALL_STATES,
    DEFAULT_QOS,
    JOB_RECORD_VERSION,
    QOS_TIERS,
    TERMINAL_STATES,
    JobRecord,
    JobState,
    JobStore,
    read_json,
    write_json_atomic,
)


def _record(**overrides):
    base = dict(
        job_id="j000001",
        seq=1,
        state=JobState.QUEUED,
        design_name="S1",
        design_hash="0" * 64,
        method="PACOR",
        qos="standard",
        priority=1,
        config={"k_candidates": 4},
        budget={"wall_clock_s": 300.0},
        cache_key="f" * 64,
    )
    base.update(overrides)
    return JobRecord(**base)


class TestJobRecord:
    def test_roundtrip_preserves_every_field(self):
        record = _record(
            attempts=2,
            cached=True,
            degraded=False,
            preempt_kind="sigterm",
            error=None,
            summary={"design": "S1"},
        )
        rebuilt = JobRecord.from_json(record.to_json())
        assert rebuilt == record

    def test_to_json_is_json_serialisable(self):
        doc = _record().to_json()
        assert json.loads(json.dumps(doc)) == doc

    def test_version_field_present_and_gated(self):
        doc = _record().to_json()
        assert doc["version"] == JOB_RECORD_VERSION
        doc["version"] = JOB_RECORD_VERSION + 1
        with pytest.raises(JobFormatError, match="version"):
            JobRecord.from_json(doc)

    def test_missing_version_rejected(self):
        doc = _record().to_json()
        del doc["version"]
        with pytest.raises(JobFormatError, match="version"):
            JobRecord.from_json(doc)

    def test_unknown_field_rejected(self):
        doc = _record().to_json()
        doc["surprise"] = 1
        with pytest.raises(JobFormatError, match="surprise"):
            JobRecord.from_json(doc)

    def test_missing_required_field_rejected(self):
        doc = _record().to_json()
        del doc["cache_key"]
        with pytest.raises(JobFormatError, match="cache_key"):
            JobRecord.from_json(doc)

    def test_unknown_state_rejected(self):
        doc = _record().to_json()
        doc["state"] = "meditating"
        with pytest.raises(JobFormatError, match="meditating"):
            JobRecord.from_json(doc)

    def test_non_object_rejected(self):
        with pytest.raises(JobFormatError):
            JobRecord.from_json(["not", "a", "record"])

    def test_error_is_pacor_taxonomy(self):
        with pytest.raises(PacorError):
            JobRecord.from_json({})


class TestStates:
    def test_preempted_is_settled_but_not_terminal(self):
        assert JobState.PREEMPTED in ALL_STATES
        assert JobState.PREEMPTED not in TERMINAL_STATES

    def test_terminal_states(self):
        assert TERMINAL_STATES == {
            JobState.SUCCEEDED,
            JobState.FAILED,
            JobState.CANCELLED,
        }


class TestQosTiers:
    def test_default_tier_exists(self):
        assert DEFAULT_QOS in QOS_TIERS

    def test_priorities_strictly_ordered(self):
        prios = [t.priority for t in QOS_TIERS.values()]
        assert len(set(prios)) == len(prios)
        assert (
            QOS_TIERS["interactive"].priority
            < QOS_TIERS["standard"].priority
            < QOS_TIERS["batch"].priority
        )

    def test_budget_doc_covers_budget_limits(self):
        doc = QOS_TIERS["interactive"].budget_doc()
        assert set(doc) == {"wall_clock_s", "astar_expansions", "rip_rounds"}

    def test_batch_is_unbounded(self):
        doc = QOS_TIERS["batch"].budget_doc()
        assert all(v is None for v in doc.values())


class TestAtomicJson:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"a": 1})
        assert read_json(path) == {"a": 1}
        assert not path.with_name("doc.json.tmp").exists()

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(JobFormatError, match="does not exist"):
            read_json(tmp_path / "nope.json")

    def test_read_invalid_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(JobFormatError, match="not valid JSON"):
            read_json(path)

    def test_read_non_object_raises(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(JobFormatError, match="object"):
            read_json(path)


class TestJobStore:
    def _allocate(self, store, design_name="S1", **overrides):
        design = design_by_name(design_name)
        kwargs = dict(
            design_doc=design_to_json(design),
            design_name=design.name,
            design_hash=design.canonical_hash(),
            method="PACOR",
            qos="standard",
            priority=1,
            config={"k_candidates": 4},
            budget=QOS_TIERS["standard"].budget_doc(),
            cache_key="c" * 64,
        )
        kwargs.update(overrides)
        return store.allocate(**kwargs)

    def test_ids_are_deterministic_sequence(self, tmp_path):
        store = JobStore(tmp_path)
        first = self._allocate(store)
        second = self._allocate(store)
        assert first.job_id == "j000001"
        assert second.job_id == "j000002"
        assert store.list_ids() == ["j000001", "j000002"]

    def test_sequence_survives_restart(self, tmp_path):
        store = JobStore(tmp_path)
        self._allocate(store)
        reopened = JobStore(tmp_path)
        assert reopened.next_seq() == 2
        assert self._allocate(reopened).job_id == "j000002"

    def test_allocate_writes_design_and_record(self, tmp_path):
        store = JobStore(tmp_path)
        record = self._allocate(store)
        assert store.exists(record.job_id)
        assert store.design_path(record.job_id).is_file()
        loaded = store.load(record.job_id)
        assert loaded == record
        assert loaded.state == JobState.QUEUED

    def test_fault_doc_written_when_given(self, tmp_path):
        store = JobStore(tmp_path)
        record = self._allocate(store, fault_doc={"version": 1, "faults": []})
        assert store.faults_path(record.job_id).is_file()

    def test_load_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobFormatError, match="no such job"):
            store.load("j999999")

    def test_save_updates_record(self, tmp_path):
        store = JobStore(tmp_path)
        record = self._allocate(store)
        record.state = JobState.RUNNING
        record.attempts = 1
        store.save(record)
        assert store.load(record.job_id).state == JobState.RUNNING


class TestEventStream:
    def test_append_and_incremental_read(self, tmp_path):
        store = JobStore(tmp_path)
        store.job_dir("j000001").mkdir()
        store.append_event("j000001", {"kind": "status", "status": "queued"})
        store.append_event("j000001", {"kind": "status", "status": "go"})
        events, cursor = store.read_events("j000001")
        assert [e["status"] for e in events] == ["queued", "go"]
        assert cursor == 2
        # Incremental poll from the cursor sees only what is new.
        store.append_event("j000001", {"kind": "status", "status": "done"})
        events, cursor = store.read_events("j000001", after=cursor)
        assert [e["status"] for e in events] == ["done"]
        assert cursor == 3

    def test_missing_stream_is_empty(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.read_events("j000042") == ([], 0)

    def test_torn_tail_ignored_until_complete(self, tmp_path):
        store = JobStore(tmp_path)
        store.job_dir("j000001").mkdir()
        store.append_event("j000001", {"kind": "status", "status": "ok"})
        with open(store.events_path("j000001"), "a", encoding="utf-8") as fh:
            fh.write('{"kind": "status", "stat')  # worker mid-write
        events, cursor = store.read_events("j000001")
        assert len(events) == 1
        assert cursor == 1
