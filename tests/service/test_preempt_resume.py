"""Preemption, crash recovery and resume semantics of the service.

The contract under test (see docs/service.md):

* SIGTERM mid-job parks a checkpoint and settles the job ``preempted``;
  a daemon restarted over the same root lists it as ``preempted`` and a
  resume completes **bit-identically** to an uninterrupted run (SIGTERM
  parks the stage-boundary snapshot, whose resume carries the PR-2
  bit-identity guarantee).
* A genuinely budget-exceeded job parks its mid-stage interrupt
  snapshot instead (partial progress is worth keeping — the same budget
  would trip at the same spot again) and can be resumed with a raised
  budget to the same final summary as an uninterrupted run.
"""

import json
import time

import pytest

from repro.core import PacorConfig, run_method
from repro.designs import design_by_name, design_to_json
from repro.service import JobState, PacorService


def canonical(result_doc):
    doc = json.loads(json.dumps(result_doc))
    doc.get("summary", {}).pop("runtime_s", None)
    return json.dumps(doc, sort_keys=True)


def canonical_summary(summary):
    doc = dict(summary)
    doc.pop("runtime_s", None)
    return json.dumps(doc, sort_keys=True)


def wait_for_state(service, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.job(job_id)
        if record.state == state:
            return record
        time.sleep(0.01)
    raise AssertionError(
        f"job {job_id} never reached {state!r} "
        f"(currently {service.job(job_id).state!r})"
    )


class TestSigtermPreemption:
    def test_graceful_stop_parks_restart_lists_resume_bit_identical(
        self, tmp_path
    ):
        root = tmp_path / "svc"
        service = PacorService(root, workers=1)
        record = service.submit(design_to_json(design_by_name("S5")))
        job_id = record.job_id
        service.start()
        wait_for_state(service, job_id, JobState.RUNNING)
        time.sleep(0.3)  # let the flow get past the first stage boundary
        # Graceful stop SIGTERMs the worker mid-run.
        service.stop(graceful=True, timeout=30.0)

        preempted = service.job(job_id)
        assert preempted.state == JobState.PREEMPTED
        assert preempted.preempt_kind == "sigterm"
        assert service.metrics.counter_values()["service.preemptions"] == 1
        # The parked checkpoint is the resume token served by the API.
        checkpoint = service.checkpoint_doc(job_id)
        assert checkpoint["design"]["name"] == "S5"

        # A fresh daemon over the same root re-lists the job, still
        # preempted and still resumable.
        revived = PacorService(root, workers=1)
        listed = revived.job(job_id)
        assert listed.state == JobState.PREEMPTED
        resumed = revived.resume(job_id)
        assert resumed.state == JobState.QUEUED
        revived.start()
        try:
            assert revived.drain(timeout=120.0)
            final = revived.job(job_id)
            assert final.state == JobState.SUCCEEDED, final.error
            assert final.degraded is False
            assert final.attempts == 2
            # Bit-identical to the uninterrupted flow: paths, lengths,
            # incidents, events — everything except wall-clock runtime.
            direct = run_method(
                design_by_name("S5"), "PACOR", PacorConfig()
            ).to_json()
            assert canonical(revived.result_doc(job_id)) == canonical(direct)
            assert (
                revived.metrics.counter_values()["service.resumes"] == 1
            )
        finally:
            revived.stop(graceful=False, timeout=10.0)

    def test_cancel_running_job_settles_cancelled(self, tmp_path):
        service = PacorService(tmp_path, workers=1)
        record = service.submit(design_to_json(design_by_name("S5")))
        service.start()
        try:
            wait_for_state(service, record.job_id, JobState.RUNNING)
            cancelling = service.cancel(record.job_id)
            assert cancelling.cancel_requested is True
            final = wait_for_state(
                service, record.job_id, JobState.CANCELLED
            )
            assert final.state == JobState.CANCELLED
        finally:
            service.stop(graceful=False, timeout=10.0)


class TestBudgetPreemption:
    def test_budget_exceeded_parks_and_resume_with_raised_budget(
        self, tmp_path
    ):
        service = PacorService(tmp_path, workers=1)
        record = service.submit(
            design_to_json(design_by_name("S3")),
            budget={"astar_expansions": 200},
        )
        job_id = record.job_id
        service.start()
        try:
            assert service.drain(timeout=60.0)
            preempted = service.job(job_id)
            assert preempted.state == JobState.PREEMPTED
            assert preempted.preempt_kind == "astar-expansions"
            # The partial (degraded) result is still served.
            partial = service.result_doc(job_id)
            assert partial["degraded"] is True
            assert service.checkpoint_doc(job_id)["design"]["name"] == "S3"

            # Resume with the budget raised: converges to the same
            # summary as an uninterrupted run (the PR-2 guarantee for
            # mid-stage interrupt resumes on this scenario).
            service.resume(job_id, budget={"astar_expansions": 100_000_000})
            assert service.drain(timeout=120.0)
            final = service.job(job_id)
            assert final.state == JobState.SUCCEEDED, final.error
            direct = run_method(design_by_name("S3"), "PACOR", PacorConfig())
            assert canonical_summary(
                service.result_doc(job_id)["summary"]
            ) == canonical_summary(direct.summary_row())
        finally:
            service.stop(graceful=False, timeout=10.0)

    def test_degraded_partial_result_is_not_cached(self, tmp_path):
        service = PacorService(tmp_path, workers=1)
        doc = design_to_json(design_by_name("S3"))
        service.submit(doc, budget={"astar_expansions": 200})
        service.start()
        try:
            assert service.drain(timeout=60.0)
            # Same design/config again: must MISS (the truncated run
            # never entered the cache) and route for real this time.
            again = service.submit(doc)
            assert again.cached is False
            assert service.drain(timeout=120.0)
            assert service.job(again.job_id).state == JobState.SUCCEEDED
        finally:
            service.stop(graceful=False, timeout=10.0)

    def test_resume_non_preempted_job_rejected(self, tmp_path):
        from repro.robustness.errors import ServiceError

        service = PacorService(tmp_path, workers=1)
        record = service.submit(design_to_json(design_by_name("S1")))
        with pytest.raises(ServiceError, match="not preempted"):
            service.resume(record.job_id)

    def test_resume_can_switch_qos_tier(self, tmp_path):
        service = PacorService(tmp_path, workers=1)
        record = service.submit(
            design_to_json(design_by_name("S3")),
            qos="interactive",
            budget={"astar_expansions": 200},
        )
        service.start()
        try:
            assert service.drain(timeout=60.0)
            assert service.job(record.job_id).state == JobState.PREEMPTED
            resumed = service.resume(record.job_id, qos="batch")
            assert resumed.qos == "batch"
            assert resumed.budget["astar_expansions"] is None
            assert service.drain(timeout=120.0)
            assert (
                service.job(record.job_id).state == JobState.SUCCEEDED
            )
        finally:
            service.stop(graceful=False, timeout=10.0)
