"""Unit tests for the dispatch queue and the content-addressed cache."""

from repro.core import PacorConfig
from repro.observability import Metrics
from repro.service.cache import ResultCache, result_cache_key
from repro.service.queue import JobQueue


class TestJobQueue:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        queue.push(1, 1, "j000001")
        queue.push(1, 2, "j000002")
        queue.push(1, 3, "j000003")
        assert [queue.pop(), queue.pop(), queue.pop()] == [
            "j000001",
            "j000002",
            "j000003",
        ]

    def test_priority_beats_submission_order(self):
        queue = JobQueue()
        queue.push(2, 1, "batch-first")
        queue.push(0, 2, "interactive-later")
        assert queue.pop() == "interactive-later"
        assert queue.pop() == "batch-first"

    def test_pop_empty_returns_none(self):
        assert JobQueue().pop() is None

    def test_push_is_idempotent(self):
        queue = JobQueue()
        queue.push(1, 1, "j000001")
        queue.push(1, 1, "j000001")
        assert len(queue) == 1
        assert queue.pop() == "j000001"
        assert queue.pop() is None

    def test_lazy_remove_skips_cancelled(self):
        queue = JobQueue()
        queue.push(1, 1, "j000001")
        queue.push(1, 2, "j000002")
        assert queue.remove("j000001") is True
        assert "j000001" not in queue
        assert queue.pop() == "j000002"
        assert queue.pop() is None

    def test_remove_unknown_is_false(self):
        assert JobQueue().remove("j000009") is False

    def test_repush_after_remove(self):
        queue = JobQueue()
        queue.push(1, 1, "j000001")
        queue.remove("j000001")
        queue.push(1, 1, "j000001")
        assert queue.pop() == "j000001"

    def test_job_ids_in_dispatch_order(self):
        queue = JobQueue()
        queue.push(2, 1, "c")
        queue.push(0, 2, "a")
        queue.push(1, 3, "b")
        queue.remove("b")
        assert queue.job_ids() == ["a", "c"]


class TestCacheKey:
    def test_budget_fields_do_not_affect_key(self):
        base = PacorConfig().to_json()
        bounded = PacorConfig(
            wall_clock_budget_s=1.0, astar_expansion_budget=100
        ).to_json()
        assert result_cache_key("d" * 64, "PACOR", base) == result_cache_key(
            "d" * 64, "PACOR", bounded
        )

    def test_semantic_config_change_changes_key(self):
        base = PacorConfig().to_json()
        other = PacorConfig(k_candidates=7).to_json()
        assert result_cache_key("d" * 64, "PACOR", base) != result_cache_key(
            "d" * 64, "PACOR", other
        )

    def test_method_and_design_change_key(self):
        config = PacorConfig().to_json()
        key = result_cache_key("d" * 64, "PACOR", config)
        assert key != result_cache_key("e" * 64, "PACOR", config)
        assert key != result_cache_key("d" * 64, "w/o Sel", config)

    def test_fault_map_changes_key(self):
        config = PacorConfig().to_json()
        key = result_cache_key("d" * 64, "PACOR", config, None)
        faulty = result_cache_key(
            "d" * 64, "PACOR", config, {"version": 1, "faults": ["x"]}
        )
        assert key != faulty


class TestResultCache:
    def test_miss_then_store_then_hit(self, tmp_path):
        metrics = Metrics()
        cache = ResultCache(tmp_path, metrics)
        key = "a" * 64
        assert cache.get(key) is None
        doc = {"summary": {"design": "S1"}, "degraded": False}
        assert cache.put(
            key, doc, job_id="j000001", design_hash="d" * 64, method="PACOR"
        )
        assert cache.get(key) == doc
        counters = metrics.counter_values()
        assert counters["service.cache_hits"] == 1
        assert counters["service.cache_misses"] == 1
        assert counters["service.cache_stores"] == 1
        assert len(cache) == 1

    def test_degraded_results_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put(
            "b" * 64,
            {"degraded": True},
            job_id="j000001",
            design_hash="d" * 64,
            method="PACOR",
        )
        assert len(cache) == 0

    def test_cache_survives_reopen(self, tmp_path):
        key = "c" * 64
        ResultCache(tmp_path).put(
            key,
            {"degraded": False, "nets": []},
            job_id="j000001",
            design_hash="d" * 64,
            method="PACOR",
        )
        reopened = ResultCache(tmp_path)
        assert reopened.get(key) == {"degraded": False, "nets": []}
