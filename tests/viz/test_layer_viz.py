"""Rendering of multi-layer solutions (ASCII panels, SVG panels, vias)."""

from repro.core import PacorConfig, run_pacor
from repro.designs import Design
from repro.geometry import Point
from repro.geometry.point import cell_point
from repro.grid import RoutingGrid
from repro.valves import ActivationSequence, Valve
from repro.viz import render_ascii, render_svg


def _wall_design() -> Design:
    grid = RoutingGrid(15, 7, 2)
    grid.add_obstacles(Point(7, y) for y in range(7))
    design = Design(
        name="over-the-wall",
        grid=grid,
        valves=[Valve(0, Point(2, 3), ActivationSequence("01"))],
        control_pins=[Point(12, 3)],
    )
    design.validate()
    return design


class TestLayeredAscii:
    def test_panels_and_via_markers(self):
        design = _wall_design()
        result = run_pacor(design, PacorConfig())
        art = render_ascii(design, result)
        assert "-- layer 0 --" in art
        assert "-- layer 1 --" in art
        assert "+" in art
        # One header plus seven grid rows per layer.
        assert len(art.splitlines()) == 2 * (7 + 1)

    def test_upper_layer_obstacles_drawn_on_their_panel(self):
        grid = RoutingGrid(5, 4, 2)
        grid.set_obstacle(cell_point(1, 1, 1))
        design = Design(
            name="spot",
            grid=grid,
            valves=[Valve(0, Point(0, 0), ActivationSequence("0"))],
            control_pins=[Point(4, 3)],
        )
        art = render_ascii(design)
        layer0, layer1 = art.split("-- layer 1 --")
        assert "#" not in layer0
        assert "#" in layer1

    def test_planar_output_has_no_headers(self):
        grid = RoutingGrid(5, 4)
        design = Design(
            name="flat",
            grid=grid,
            valves=[Valve(0, Point(0, 0), ActivationSequence("0"))],
            control_pins=[Point(4, 3)],
        )
        art = render_ascii(design)
        assert "layer" not in art
        assert len(art.splitlines()) == 4


class TestLayeredSvg:
    def test_panels_side_by_side_with_via_rings(self):
        design = _wall_design()
        result = run_pacor(design, PacorConfig())
        svg = render_svg(design, result, cell=6)
        panel_w = 15 * 6
        # Two panels plus one gap of one cell.
        assert f'width="{panel_w * 2 + 6}"' in svg
        assert 'stroke="#dddddd"' in svg  # the panel borders
        assert 'fill="#ffffff" stroke="#4e79a7"' in svg  # via rings

    def test_planar_svg_unchanged(self):
        grid = RoutingGrid(5, 4)
        design = Design(
            name="flat",
            grid=grid,
            valves=[Valve(0, Point(0, 0), ActivationSequence("0"))],
            control_pins=[Point(4, 3)],
        )
        svg = render_svg(design, cell=6)
        assert 'width="30" height="24"' in svg
        assert "#dddddd" not in svg
