"""Tests for ASCII/SVG rendering."""

from repro import run_pacor, s1
from repro.viz import render_ascii, render_svg


def test_ascii_design_only():
    design = s1()
    art = render_ascii(design)
    lines = art.splitlines()
    assert len(lines) == design.grid.height
    assert all(len(line) == design.grid.width for line in lines)
    assert art.count("V") == len(design.valves)
    assert "#" in art  # obstacles present
    assert "P" in art  # pins present


def test_ascii_with_result_marks_channels_and_pins():
    design = s1()
    result = run_pacor(design)
    art = render_ascii(design, result)
    assert "@" in art  # assigned pins
    assert art.count("V") == len(design.valves)


def test_svg_well_formed():
    design = s1()
    result = run_pacor(design)
    svg = render_svg(design, result)
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert svg.count("<circle") >= len(design.valves)
    assert "<line" in svg  # channels drawn


def test_svg_design_only_has_no_lines():
    design = s1()
    svg = render_svg(design)
    assert "<line" not in svg
    assert "<rect" in svg


def test_svg_scales_with_cell_size():
    design = s1()
    small = render_svg(design, cell=4)
    large = render_svg(design, cell=10)
    assert 'width="48"' in small  # 12 * 4
    assert 'width="120"' in large  # 12 * 10
