"""Tests for activation sequences and status compatibility (Defs 1-3)."""

import pytest

from repro.valves import ActivationSequence, compatible_status, merge_status
from repro.valves.activation import merge_all


class TestStatusCompatibility:
    def test_equal_statuses_compatible(self):
        assert compatible_status("0", "0")
        assert compatible_status("1", "1")
        assert compatible_status("X", "X")

    def test_dont_care_compatible_with_anything(self):
        assert compatible_status("X", "0")
        assert compatible_status("1", "X")

    def test_conflicting_statuses_incompatible(self):
        assert not compatible_status("0", "1")
        assert not compatible_status("1", "0")


class TestMergeStatus:
    def test_merge_with_dont_care(self):
        assert merge_status("X", "1") == "1"
        assert merge_status("0", "X") == "0"
        assert merge_status("X", "X") == "X"

    def test_merge_equal(self):
        assert merge_status("1", "1") == "1"

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            merge_status("0", "1")


class TestActivationSequence:
    def test_validation(self):
        with pytest.raises(ValueError):
            ActivationSequence("")
        with pytest.raises(ValueError):
            ActivationSequence("012")

    def test_compatibility_definition(self):
        a = ActivationSequence("01X")
        b = ActivationSequence("0XX")
        c = ActivationSequence("11X")
        d = ActivationSequence("X1X")
        assert a.compatible(b)
        assert b.compatible(a)
        assert not a.compatible(c)
        assert not b.compatible(c)  # "0" vs "1" conflict at step 0
        assert b.compatible(d)  # X tolerates both sides

    def test_different_lengths_incompatible(self):
        assert not ActivationSequence("01").compatible(ActivationSequence("011"))

    def test_merge_is_most_constrained(self):
        a = ActivationSequence("0XX1")
        b = ActivationSequence("X1X1")
        assert a.merge(b) == ActivationSequence("01X1")

    def test_merge_incompatible_raises(self):
        with pytest.raises(ValueError):
            ActivationSequence("0").merge(ActivationSequence("1"))

    def test_merge_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ActivationSequence("01").merge(ActivationSequence("011"))

    def test_merge_signature_property(self):
        """Compatibility with the merge equals compatibility with all members."""
        members = [ActivationSequence(s) for s in ("0X1", "0XX", "XX1")]
        merged = merge_all(members)
        assert merged == ActivationSequence("0X1")
        probe_ok = ActivationSequence("0X1")
        probe_bad = ActivationSequence("1X1")
        assert merged.compatible(probe_ok)
        assert all(m.compatible(probe_ok) for m in members)
        assert not merged.compatible(probe_bad)
        assert any(not m.compatible(probe_bad) for m in members)

    def test_sequence_equality_and_hash(self):
        assert ActivationSequence("01X") == ActivationSequence("01X")
        assert hash(ActivationSequence("01X")) == hash(ActivationSequence("01X"))
        assert ActivationSequence("01X") != ActivationSequence("011")

    def test_indexing(self):
        seq = ActivationSequence("01X")
        assert seq[0] == "0"
        assert seq[2] == "X"
        assert len(seq) == 3


def test_merge_all_empty_returns_none():
    assert merge_all([]) is None
