"""Tests for the exact minimum clique cover (pin minimisation)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.valves import ActivationSequence, Valve, greedy_clique_partition
from repro.valves.addressing import clique_cover_gap, minimum_clique_cover
from repro.valves.compatibility import pairwise_compatible


def make_valves(seqs):
    return [Valve(i, Point(i, 0), ActivationSequence(s)) for i, s in enumerate(seqs)]


def brute_force_minimum(valves):
    """Smallest k over all assignments (tiny instances only)."""
    n = len(valves)
    for k in range(1, n + 1):
        for assignment in itertools.product(range(k), repeat=n):
            if len(set(assignment)) != k:
                continue
            groups = [[] for _ in range(k)]
            for valve, g in zip(valves, assignment):
                groups[g].append(valve)
            if all(pairwise_compatible(g) for g in groups):
                return k
    return n


def test_empty():
    assert minimum_clique_cover([]) == []


def test_all_identical_one_group():
    valves = make_valves(["01X"] * 5)
    groups = minimum_clique_cover(valves)
    assert len(groups) == 1
    assert len(groups[0]) == 5


def test_all_conflicting_all_singletons():
    valves = make_valves(["00", "01", "10", "11"])
    groups = minimum_clique_cover(valves)
    assert len(groups) == 4


def test_beats_greedy_on_crafted_instance():
    """An instance where degree-ordered greedy is suboptimal.

    a = '0XX', b = 'X0X', c = 'XX0', d = '111': d is isolated; a,b,c are
    pairwise compatible and form one clique.  Optimal = 2.  (Greedy also
    finds 2 here; the point is exactness, checked against brute force.)
    """
    valves = make_valves(["0XX", "X0X", "XX0", "111"])
    groups = minimum_clique_cover(valves)
    assert len(groups) == brute_force_minimum(valves) == 2


def test_groups_are_true_cliques_and_cover():
    valves = make_valves(["0X", "X0", "1X", "X1", "XX", "00", "11"])
    groups = minimum_clique_cover(valves)
    covered = sorted(v.id for g in groups for v in g)
    assert covered == list(range(len(valves)))
    for group in groups:
        assert pairwise_compatible(group)


def test_budget_falls_back_to_greedy():
    valves = make_valves(["0X", "X0", "1X", "X1", "XX"])
    groups = minimum_clique_cover(valves, max_nodes=1)
    greedy = greedy_clique_partition(valves)
    assert len(groups) == len(greedy)


def test_gap_non_negative():
    valves = make_valves(["0X1", "01X", "X11", "000", "1X1"])
    assert clique_cover_gap(valves) >= 0


@given(st.lists(st.text(alphabet="01X", min_size=4, max_size=4), min_size=1, max_size=7))
@settings(max_examples=30, deadline=None)
def test_exact_matches_brute_force(seqs):
    valves = make_valves(seqs)
    groups = minimum_clique_cover(valves)
    assert len(groups) == brute_force_minimum(valves)
    for group in groups:
        assert pairwise_compatible(group)


@given(st.lists(st.text(alphabet="01X", min_size=5, max_size=5), min_size=1, max_size=12))
@settings(max_examples=20, deadline=None)
def test_exact_never_worse_than_greedy(seqs):
    valves = make_valves(seqs)
    assert clique_cover_gap(valves) >= 0
