"""Tests for the valve compatibility graph."""

from repro.geometry import Point
from repro.valves import (
    ActivationSequence,
    Valve,
    compatibility_graph,
    pairwise_compatible,
)


def make_valve(vid, seq, x=0, y=0):
    return Valve(vid, Point(x, y), ActivationSequence(seq))


def test_valve_compatible_follows_sequences():
    a = make_valve(0, "0X1")
    b = make_valve(1, "0XX")
    c = make_valve(2, "1X1")
    assert a.compatible(b)
    assert not a.compatible(c)


def test_pairwise_compatible_true_set():
    valves = [make_valve(i, s) for i, s in enumerate(("0X1", "0XX", "XX1"))]
    assert pairwise_compatible(valves)


def test_pairwise_compatible_detects_hidden_conflict():
    # a~b and b~c pairwise, but a and c conflict at step 0.
    a = make_valve(0, "0X")
    b = make_valve(1, "XX")
    c = make_valve(2, "1X")
    assert a.compatible(b) and b.compatible(c)
    assert not pairwise_compatible([a, b, c])


def test_pairwise_compatible_empty_and_singleton():
    assert pairwise_compatible([])
    assert pairwise_compatible([make_valve(0, "01")])


def test_compatibility_graph_edges():
    valves = [
        make_valve(0, "00"),
        make_valve(1, "0X"),
        make_valve(2, "11"),
    ]
    g = compatibility_graph(valves)
    assert set(g.nodes) == {0, 1, 2}
    assert g.has_edge(0, 1)
    assert not g.has_edge(0, 2)
    assert not g.has_edge(1, 2)  # "0X" vs "11" conflict at step 0


def test_compatibility_graph_clique_is_legal_pin_group():
    valves = [
        make_valve(0, "X0"),
        make_valve(1, "00"),
        make_valve(2, "0X"),
        make_valve(3, "11"),
    ]
    g = compatibility_graph(valves)
    assert g.has_edge(0, 1) and g.has_edge(1, 2) and g.has_edge(0, 2)
    assert g.degree[3] == 0
