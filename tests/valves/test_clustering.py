"""Tests for valve clustering (minimum clique cover heuristic)."""

import pytest

from repro.geometry import Point
from repro.valves import (
    ActivationSequence,
    Cluster,
    Valve,
    cluster_valves,
    greedy_clique_partition,
)
from repro.valves.compatibility import pairwise_compatible


def make_valve(vid, seq, x=0, y=0):
    return Valve(vid, Point(x, y), ActivationSequence(seq))


def test_cluster_requires_valves():
    with pytest.raises(ValueError):
        Cluster(0, [])


def test_cluster_rejects_incompatible_members():
    with pytest.raises(ValueError):
        Cluster(0, [make_valve(0, "0"), make_valve(1, "1")])


def test_cluster_size_and_ids():
    c = Cluster(3, [make_valve(5, "0X"), make_valve(7, "00")], length_matching=True)
    assert c.size == 2
    assert c.valve_ids() == [5, 7]
    assert c.length_matching


def test_greedy_partition_groups_identical_sequences():
    valves = [make_valve(i, "01") for i in range(3)] + [
        make_valve(i + 3, "10") for i in range(2)
    ]
    groups = greedy_clique_partition(valves)
    assert len(groups) == 2
    sizes = sorted(len(g) for g in groups)
    assert sizes == [2, 3]


def test_greedy_partition_produces_true_cliques():
    valves = [
        make_valve(0, "0X"),
        make_valve(1, "X0"),
        make_valve(2, "1X"),
        make_valve(3, "X1"),
        make_valve(4, "XX"),
    ]
    groups = greedy_clique_partition(valves)
    for group in groups:
        assert pairwise_compatible(group)
    covered = sorted(v.id for g in groups for v in g)
    assert covered == [0, 1, 2, 3, 4]


def test_greedy_partition_empty():
    assert greedy_clique_partition([]) == []


def test_cluster_valves_preserves_lm_groups():
    valves = [make_valve(i, "0X") for i in range(4)]
    clusters = cluster_valves(valves, lm_groups=[[0, 1]])
    lm = [c for c in clusters if c.length_matching]
    assert len(lm) == 1
    assert lm[0].valve_ids() == [0, 1]
    remaining = sorted(
        vid for c in clusters if not c.length_matching for vid in c.valve_ids()
    )
    assert remaining == [2, 3]


def test_cluster_valves_rejects_unknown_valve_in_lm_group():
    with pytest.raises(ValueError):
        cluster_valves([make_valve(0, "0")], lm_groups=[[0, 99]])


def test_cluster_valves_rejects_duplicated_lm_membership():
    valves = [make_valve(i, "XX") for i in range(3)]
    with pytest.raises(ValueError):
        cluster_valves(valves, lm_groups=[[0, 1], [1, 2]])


def test_cluster_valves_rejects_duplicate_valve_ids():
    valves = [make_valve(0, "0"), make_valve(0, "0")]
    with pytest.raises(ValueError):
        cluster_valves(valves)


def test_cluster_valves_ids_are_sequential():
    valves = [make_valve(i, "0X") for i in range(5)]
    clusters = cluster_valves(valves, lm_groups=[[0, 1], [2, 3]])
    assert [c.id for c in clusters] == list(range(len(clusters)))


def test_cluster_valves_minimises_reasonably():
    # 6 valves with identical sequences must form a single cluster.
    valves = [make_valve(i, "01X") for i in range(6)]
    clusters = cluster_valves(valves)
    assert len(clusters) == 1
    assert clusters[0].size == 6
