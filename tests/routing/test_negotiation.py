"""Tests for negotiation-based routing (Algorithm 1)."""

import pytest

from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid
from repro.routing import NegotiationRouter, RouteRequest


def request(edge_id, net, src, dst):
    return RouteRequest(edge_id, net, (Point(*src),), (Point(*dst),))


def test_empty_request_list_succeeds(grid10):
    router = NegotiationRouter(grid10)
    result = router.route([], Occupancy(grid10))
    assert result.success
    assert result.paths == {}


def test_single_edge_routes(grid10):
    router = NegotiationRouter(grid10)
    occupancy = Occupancy(grid10)
    result = router.route([request(0, 1, (0, 0), (9, 0))], occupancy)
    assert result.success
    assert result.iterations == 1
    assert result.paths[0].length == 9
    assert occupancy.cells_of(1) == set(result.paths[0].cells)


def test_non_conflicting_edges_route_first_iteration(grid10):
    router = NegotiationRouter(grid10)
    occupancy = Occupancy(grid10)
    reqs = [
        request(0, 1, (0, 0), (9, 0)),
        request(1, 2, (0, 9), (9, 9)),
    ]
    result = router.route(reqs, occupancy)
    assert result.success
    assert result.iterations == 1


def test_negotiation_resolves_crossing_demand():
    """Two nets whose straight routes cross must negotiate shared cells.

    The horizontal net stops short of the right edge, so the vertical net
    can legally detour around its end (a full-width horizontal channel
    would make any vertical crossing infeasible on a single layer).
    """
    grid = RoutingGrid(9, 9)
    router = NegotiationRouter(grid)
    occupancy = Occupancy(grid)
    reqs = [
        request(0, 1, (0, 4), (6, 4)),
        request(1, 2, (4, 0), (4, 8)),
    ]
    result = router.route(reqs, occupancy)
    assert result.success
    cells_a = set(result.paths[0].cells)
    cells_b = set(result.paths[1].cells)
    assert not cells_a & cells_b


def test_same_net_edges_may_share_cells(grid10):
    router = NegotiationRouter(grid10)
    occupancy = Occupancy(grid10)
    reqs = [
        request(0, 1, (0, 0), (9, 0)),
        request(1, 1, (0, 0), (9, 0)),
    ]
    result = router.route(reqs, occupancy)
    assert result.success


def test_unroutable_edge_reports_failure():
    grid = RoutingGrid(5, 5)
    for y in range(5):
        grid.set_obstacle(Point(2, y))
    router = NegotiationRouter(grid, gamma=3)
    occupancy = Occupancy(grid)
    result = router.route([request(0, 1, (0, 0), (4, 0))], occupancy)
    assert not result.success
    assert result.failed_edges == [0]
    assert result.iterations == 3


def test_partial_failure_keeps_final_paths():
    grid = RoutingGrid(5, 5)
    for y in range(5):
        grid.set_obstacle(Point(2, y))
    router = NegotiationRouter(grid, gamma=2)
    occupancy = Occupancy(grid)
    reqs = [
        request(0, 1, (0, 0), (0, 4)),  # routable, left of the wall
        request(1, 2, (0, 1), (4, 1)),  # blocked by the wall
    ]
    result = router.route(reqs, occupancy)
    assert not result.success
    assert 0 in result.paths
    assert result.failed_edges == [1]
    assert occupancy.cells_of(1) == set(result.paths[0].cells)


def test_preoccupied_terminals_survive_ripup():
    """Cells a net owned before routing must not be released by rip-up."""
    grid = RoutingGrid(7, 7)
    occupancy = Occupancy(grid)
    occupancy.occupy([Point(0, 3)], net=1)
    # Force at least one rip-up round: two nets compete for a 1-wide slot.
    for y in list(range(0, 3)) + list(range(4, 7)):
        grid.set_obstacle(Point(3, y))
    router = NegotiationRouter(grid, gamma=4)
    reqs = [
        request(0, 1, (0, 3), (6, 3)),
        request(1, 2, (0, 2), (6, 2)),
    ]
    result = router.route(reqs, occupancy)
    # Whatever the outcome, the pre-occupied terminal stays owned by net 1.
    assert occupancy.owner(Point(0, 3)) == 1


def test_history_cost_grows_on_contention():
    grid = RoutingGrid(9, 3)
    # Single corridor row y=1 plus detours via y=0/y=2; two nets contend.
    router = NegotiationRouter(grid)
    occupancy = Occupancy(grid)
    reqs = [
        request(0, 1, (0, 1), (8, 1)),
        request(1, 2, (0, 0), (8, 0)),
    ]
    result = router.route(reqs, occupancy)
    assert result.success
    # No crossing in the final solution.
    assert not set(result.paths[0].cells) & set(result.paths[1].cells)


def test_negotiation_leaves_no_empty_buckets():
    """Regression: rip-up rounds must not leak empty occupancy buckets.

    Net 1's direct row-2 corridor walls net 2 into its dead-end column,
    so iteration 1 fails and the rip-up releases every claimed cell via
    ``release_cell_ids``; once history prices the corridor above the
    row-0 detour, both nets route.  Pre-fix each rip-up round left the
    ripped nets' empty sets behind in the inverted index.
    """
    grid = RoutingGrid(7, 5)
    open_cells = set()
    open_cells |= {(x, 2) for x in range(7)}  # row-2 corridor
    open_cells |= {(2, y) for y in (1, 2, 3)}  # column-2 corridor
    open_cells |= {(x, 0) for x in range(7)}  # row-0 detour
    open_cells |= {(0, y) for y in (0, 1, 2)}  # west link
    open_cells |= {(6, y) for y in (0, 1, 2)}  # east link
    for y in range(5):
        for x in range(7):
            if (x, y) not in open_cells:
                grid.set_obstacle(Point(x, y))
    router = NegotiationRouter(grid)
    occupancy = Occupancy(grid)
    reqs = [
        request(0, 1, (0, 2), (6, 2)),
        request(1, 2, (2, 1), (2, 3)),
    ]
    result = router.route(reqs, occupancy)
    assert result.success
    assert result.iterations > 1  # at least one rip-up happened
    assert all(bucket for bucket in occupancy._cells.values()), (
        "empty bucket leaked through negotiation rip-up"
    )
    assert set(occupancy._cells) == {1, 2}
