"""Tests for the exclusive-within-net semantics of the negotiation router.

Steiner-tree edges of one net must meet only at their shared endpoint
nodes: riding along a sibling edge would physically splice the channels
and silently change the matched lengths.  These tests pin that contract.
"""

import pytest

from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid
from repro.routing import NegotiationRouter, RouteRequest


def test_same_net_edges_share_only_endpoints():
    grid = RoutingGrid(15, 15)
    occupancy = Occupancy(grid)
    # Y-shaped tree: two leaves joining a root.
    root = Point(7, 7)
    reqs = [
        RouteRequest(0, 1, (Point(2, 7),), (root,)),
        RouteRequest(1, 1, (Point(12, 7),), (root,)),
        RouteRequest(2, 1, (Point(7, 2),), (root,)),
    ]
    result = NegotiationRouter(grid).route(reqs, occupancy)
    assert result.success
    cell_claims = {}
    for eid, path in result.paths.items():
        for cell in path.cells:
            cell_claims.setdefault(cell, set()).add(eid)
    shared = {cell for cell, eids in cell_claims.items() if len(eids) > 1}
    assert shared == {root}


def test_exclusivity_can_be_disabled():
    grid = RoutingGrid(9, 3)
    occupancy = Occupancy(grid)
    # Two identical requests for the same net through a one-row corridor.
    for y in (0, 2):
        for x in range(9):
            grid.set_obstacle(Point(x, y))
    reqs = [
        RouteRequest(0, 1, (Point(0, 1),), (Point(8, 1),)),
        RouteRequest(1, 1, (Point(0, 1),), (Point(8, 1),)),
    ]
    strict = NegotiationRouter(grid, gamma=2).route(reqs, Occupancy(grid))
    assert not strict.success  # second edge may not ride the first
    relaxed = NegotiationRouter(
        grid, gamma=2, exclusive_within_net=False
    ).route(reqs, Occupancy(grid))
    assert relaxed.success


def test_pre_occupied_terminals_are_enterable_endpoints():
    grid = RoutingGrid(10, 10)
    occupancy = Occupancy(grid)
    occupancy.occupy([Point(1, 5), Point(8, 5)], net=3)
    reqs = [RouteRequest(0, 3, (Point(1, 5),), (Point(8, 5),))]
    result = NegotiationRouter(grid).route(reqs, occupancy)
    assert result.success
    assert result.paths[0].source == Point(1, 5)
    assert result.paths[0].target == Point(8, 5)


def test_other_net_terminals_still_block():
    grid = RoutingGrid(7, 3)
    occupancy = Occupancy(grid)
    # A foreign terminal sits mid-corridor.
    for y in (0, 2):
        for x in range(7):
            grid.set_obstacle(Point(x, y))
    occupancy.occupy([Point(3, 1)], net=99)
    reqs = [RouteRequest(0, 1, (Point(0, 1),), (Point(6, 1),))]
    result = NegotiationRouter(grid, gamma=2).route(reqs, occupancy)
    assert not result.success
