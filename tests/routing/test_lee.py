"""Tests for the Lee maze router, including A* cross-validation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, manhattan
from repro.grid import Occupancy, RoutingGrid
from repro.routing import astar_route, lee_route


def test_point_to_point(grid10):
    path = lee_route(grid10, [Point(0, 0)], [Point(7, 3)])
    assert path is not None
    assert path.length == 10


def test_source_is_target(grid10):
    path = lee_route(grid10, [Point(3, 3)], [Point(3, 3)])
    assert path is not None
    assert path.length == 0


def test_unreachable(grid10):
    for y in range(10):
        grid10.set_obstacle(Point(5, y))
    assert lee_route(grid10, [Point(0, 0)], [Point(9, 0)]) is None


def test_blocked_endpoints(grid10):
    grid10.set_obstacle(Point(0, 0))
    assert lee_route(grid10, [Point(0, 0)], [Point(5, 5)]) is None


def test_multi_source_multi_target(grid10):
    path = lee_route(grid10, [Point(0, 0), Point(0, 9)], [Point(9, 9), Point(9, 0)])
    assert path is not None
    assert path.length == 9


def test_respects_occupancy(grid10):
    occupancy = Occupancy(grid10)
    occupancy.occupy([Point(5, y) for y in range(10)], net=7)
    assert (
        lee_route(grid10, [Point(0, 0)], [Point(9, 0)], net=1, occupancy=occupancy)
        is None
    )
    path = lee_route(
        grid10, [Point(0, 0)], [Point(9, 0)], net=7, occupancy=occupancy
    )
    assert path is not None


def test_empty_inputs(grid10):
    assert lee_route(grid10, [], [Point(0, 0)]) is None
    assert lee_route(grid10, [Point(0, 0)], []) is None


def test_lee_matches_astar_on_random_mazes():
    """Both routers are exact on unit costs: lengths must agree."""
    rng = random.Random(23)
    for _ in range(25):
        grid = RoutingGrid(15, 15)
        for _ in range(rng.randrange(0, 50)):
            grid.set_obstacle(Point(rng.randrange(15), rng.randrange(15)))
        free = [p for p in grid.extent().cells() if grid.is_free(p)]
        if len(free) < 2:
            continue
        src, dst = rng.sample(free, 2)
        a = astar_route(grid, [src], [dst])
        b = lee_route(grid, [src], [dst])
        assert (a is None) == (b is None)
        if a is not None:
            assert a.length == b.length


@given(
    st.tuples(st.integers(0, 11), st.integers(0, 11)),
    st.tuples(st.integers(0, 11), st.integers(0, 11)),
)
@settings(max_examples=40, deadline=None)
def test_lee_optimal_on_empty_grid(src, dst):
    grid = RoutingGrid(12, 12)
    path = lee_route(grid, [Point(*src)], [Point(*dst)])
    assert path is not None
    assert path.length == manhattan(src, dst)
