"""Tests for MST-based cluster routing."""

import pytest

from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid
from repro.routing import manhattan_mst, route_cluster_mst


class TestManhattanMst:
    def test_empty_and_singleton(self):
        assert manhattan_mst([]) == []
        assert manhattan_mst([Point(0, 0)]) == []

    def test_two_points(self):
        assert manhattan_mst([Point(0, 0), Point(3, 0)]) == [(0, 1)]

    def test_collinear_chain(self):
        points = [Point(0, 0), Point(10, 0), Point(5, 0)]
        edges = manhattan_mst(points)
        total = sum(points[a].manhattan(points[b]) for a, b in edges)
        assert total == 10  # chain, not star

    def test_edge_count(self):
        points = [Point(x, x % 3) for x in range(7)]
        assert len(manhattan_mst(points)) == 6

    def test_mst_weight_is_minimal_small_case(self):
        import itertools

        points = [Point(0, 0), Point(4, 0), Point(0, 4), Point(4, 4), Point(2, 2)]
        edges = manhattan_mst(points)
        weight = sum(points[a].manhattan(points[b]) for a, b in edges)
        # Brute-force all spanning trees via Kruskal over all edge subsets
        # is overkill; compare against networkx.
        import networkx as nx

        g = nx.Graph()
        for i, j in itertools.combinations(range(len(points)), 2):
            g.add_edge(i, j, weight=points[i].manhattan(points[j]))
        expected = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(g).edges(data=True)
        )
        assert weight == expected


class TestRouteClusterMst:
    def test_empty_terminals(self, grid10):
        result = route_cluster_mst(grid10, Occupancy(grid10), 1, [])
        assert result.success

    def test_single_terminal(self, grid10):
        occupancy = Occupancy(grid10)
        result = route_cluster_mst(grid10, occupancy, 1, [Point(4, 4)])
        assert result.success
        assert occupancy.owner(Point(4, 4)) == 1

    def test_connects_three_terminals(self, grid10):
        occupancy = Occupancy(grid10)
        terminals = [Point(0, 0), Point(9, 0), Point(0, 9)]
        result = route_cluster_mst(grid10, occupancy, 1, terminals)
        assert result.success
        cells = occupancy.cells_of(1)
        assert all(t in cells for t in terminals)
        # Connectivity: BFS within the net's cells reaches all terminals.
        frontier = [terminals[0]]
        seen = {terminals[0]}
        while frontier:
            p = frontier.pop()
            for q in p.neighbors4():
                if q in cells and q not in seen:
                    seen.add(q)
                    frontier.append(q)
        assert all(t in seen for t in terminals)

    def test_point_to_path_taps_existing_channel(self, grid10):
        occupancy = Occupancy(grid10)
        terminals = [Point(0, 5), Point(9, 5), Point(5, 0)]
        result = route_cluster_mst(grid10, occupancy, 1, terminals)
        assert result.success
        # The tap from (5, 0) should reach the horizontal channel in 5 steps.
        lengths = sorted(p.length for p in result.paths)
        assert lengths[0] == 5

    def test_failure_declusters_unreachable_terminal(self):
        grid = RoutingGrid(10, 10)
        # Wall isolating the right column.
        for y in range(10):
            grid.set_obstacle(Point(8, y))
        occupancy = Occupancy(grid)
        terminals = [Point(0, 0), Point(9, 5)]
        result = route_cluster_mst(grid, occupancy, 1, terminals)
        assert not result.success
        assert result.failed == [1]
        assert 0 in result.connected

    def test_blocked_seed_fails_everything(self):
        grid = RoutingGrid(5, 5)
        grid.set_obstacle(Point(0, 0))
        result = route_cluster_mst(grid, Occupancy(grid), 1, [Point(0, 0), Point(4, 4)])
        assert not result.success
        assert result.failed == [0, 1]

    def test_respects_other_nets(self, grid10):
        occupancy = Occupancy(grid10)
        occupancy.occupy([Point(5, y) for y in range(10)], net=99)
        terminals = [Point(0, 0), Point(3, 3)]
        result = route_cluster_mst(grid10, occupancy, 1, terminals)
        assert result.success
        for path in result.paths:
            assert all(occupancy.owner(c) == 1 for c in path.cells)
