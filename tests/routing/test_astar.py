"""Tests for the A* routing engine."""

import pytest

from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid
from repro.routing import Path, astar_route
from repro.routing.astar import ALL_SOURCES_BLOCKED, astar_route_detailed


def test_point_to_point_shortest(grid10):
    path = astar_route(grid10, [Point(0, 0)], [Point(5, 0)])
    assert path is not None
    assert path.length == 5
    assert path.source == Point(0, 0)
    assert path.target == Point(5, 0)


def test_source_equals_target(grid10):
    path = astar_route(grid10, [Point(3, 3)], [Point(3, 3)])
    assert path == Path([Point(3, 3)])


def test_routes_around_obstacle_wall(grid10):
    # Vertical wall with one gap at y = 9.
    for y in range(9):
        grid10.set_obstacle(Point(5, y))
    path = astar_route(grid10, [Point(0, 0)], [Point(9, 0)])
    assert path is not None
    assert any(cell == Point(5, 9) for cell in path)
    assert path.length > 9


def test_unroutable_returns_none(grid10):
    for y in range(10):
        grid10.set_obstacle(Point(5, y))
    assert astar_route(grid10, [Point(0, 0)], [Point(9, 0)]) is None


def test_blocked_source_or_target_returns_none(grid10):
    grid10.set_obstacle(Point(0, 0))
    assert astar_route(grid10, [Point(0, 0)], [Point(5, 5)]) is None
    grid10.set_obstacle(Point(0, 0), False)
    grid10.set_obstacle(Point(5, 5))
    assert astar_route(grid10, [Point(0, 0)], [Point(5, 5)]) is None


def test_point_to_path_targets_any_member(grid10):
    targets = [Point(9, y) for y in range(10)]
    path = astar_route(grid10, [Point(0, 5)], targets)
    assert path is not None
    assert path.length == 9
    assert path.target == Point(9, 5)


def test_path_to_path_multiple_sources(grid10):
    sources = [Point(0, 0), Point(0, 9)]
    targets = [Point(9, 9)]
    path = astar_route(grid10, sources, targets)
    assert path is not None
    assert path.source == Point(0, 9)
    assert path.length == 9


def test_occupancy_blocks_other_nets(grid10):
    occupancy = Occupancy(grid10)
    occupancy.occupy([Point(5, y) for y in range(10)], net=1)
    path = astar_route(grid10, [Point(0, 0)], [Point(9, 0)], net=2, occupancy=occupancy)
    assert path is None


def test_occupancy_allows_same_net(grid10):
    occupancy = Occupancy(grid10)
    occupancy.occupy([Point(5, y) for y in range(10)], net=1)
    path = astar_route(grid10, [Point(0, 0)], [Point(9, 0)], net=1, occupancy=occupancy)
    assert path is not None
    assert path.length == 9


def test_history_cost_steers_away(grid10):
    # Make the straight corridor expensive; A* should detour around it.
    history = [0.0] * (grid10.width * grid10.height)
    for x in range(1, 9):
        history[grid10.index(Point(x, 0))] = 10.0
    path = astar_route(grid10, [Point(0, 0)], [Point(9, 0)], history=history)
    assert path is not None
    middle = [c for c in path.cells if 0 < c.x < 9]
    assert all(c.y > 0 for c in middle)


def test_extra_obstacles_are_respected(grid10):
    extra = {Point(x, 0) for x in range(1, 10)}
    extra |= {Point(x, 1) for x in range(0, 9)}
    path = astar_route(grid10, [Point(0, 0)], [Point(9, 0)], extra_obstacles=extra)
    assert path is None or all(c not in extra for c in path.cells)


def test_max_expansions_aborts(grid10):
    path = astar_route(grid10, [Point(0, 0)], [Point(9, 9)], max_expansions=2)
    assert path is None


def test_empty_sources_or_targets(grid10):
    assert astar_route(grid10, [], [Point(1, 1)]) is None
    assert astar_route(grid10, [Point(1, 1)], []) is None


def test_path_cells_are_free_and_adjacent(grid10):
    grid10.add_obstacles([Point(3, y) for y in range(1, 10)])
    path = astar_route(grid10, [Point(0, 9)], [Point(9, 9)])
    assert path is not None
    for cell in path:
        assert grid10.is_free(cell)


# --------------------------------------------------------------------------
# Detailed failure reasons (astar_route_detailed)


def test_blocked_shared_source_target_cell_reports_all_sources_blocked(
    grid10,
):
    """Semantics pin: a blocked cell that is both source and target fails.

    The trivial zero-length path only exists when the shared cell is
    routable — a cell occupied by another net cannot seed the search,
    and the failure is classified as ALL_SOURCES_BLOCKED rather than
    search exhaustion (matching the pre-kernel-core composition).
    """
    occupancy = Occupancy(grid10)
    occupancy.occupy([Point(3, 3)], net=9)
    path, reason = astar_route_detailed(
        grid10, [Point(3, 3)], [Point(3, 3)], net=1, occupancy=occupancy
    )
    assert path is None
    assert reason == ALL_SOURCES_BLOCKED


def test_routable_shared_source_target_cell_is_a_trivial_path(grid10):
    path, reason = astar_route_detailed(grid10, [Point(4, 4)], [Point(4, 4)])
    assert reason is None
    assert path is not None and list(path) == [Point(4, 4)]


def test_all_sources_blocked_distinguished_from_exhaustion(grid10):
    # Every source blocked -> ALL_SOURCES_BLOCKED.
    occupancy = Occupancy(grid10)
    occupancy.occupy([Point(0, 0), Point(5, 5)], net=9)
    path, reason = astar_route_detailed(
        grid10,
        [Point(0, 0), Point(5, 5)],
        [Point(9, 9)],
        net=1,
        occupancy=occupancy,
    )
    assert path is None and reason == ALL_SOURCES_BLOCKED
    # Routable source walled in -> plain exhaustion, no reason.
    for p in (Point(1, 0), Point(0, 1), Point(1, 1)):
        grid10.set_obstacle(p)
    path, reason = astar_route_detailed(grid10, [Point(0, 0)], [Point(9, 9)])
    assert path is None and reason is None
