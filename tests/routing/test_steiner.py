"""Tests for the iterated 1-Steiner heuristic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, manhattan
from repro.routing.steiner import (
    hanan_points,
    mst_weight,
    rectilinear_steiner_tree,
    steiner_heuristic_length,
)


class TestHananPoints:
    def test_two_diagonal_points(self):
        pts = hanan_points([Point(0, 0), Point(3, 4)])
        assert set(pts) == {Point(0, 4), Point(3, 0)}

    def test_collinear_points_have_no_extra(self):
        assert hanan_points([Point(0, 0), Point(5, 0), Point(9, 0)]) == []

    def test_excludes_terminals(self):
        pts = hanan_points([Point(0, 0), Point(2, 2), Point(0, 2)])
        assert Point(0, 0) not in pts
        assert Point(2, 0) in pts


class TestSteinerTree:
    def test_degenerate(self):
        nodes, edges, weight = rectilinear_steiner_tree([])
        assert weight == 0
        nodes, edges, weight = rectilinear_steiner_tree([Point(3, 3)])
        assert weight == 0 and edges == []

    def test_two_points_no_steiner(self):
        nodes, edges, weight = rectilinear_steiner_tree([Point(0, 0), Point(3, 4)])
        assert weight == 7
        assert len(nodes) == 2

    def test_classic_t_shape_saves_wire(self):
        # Three corners of a square: MST = 2*4 = 8; Steiner point at the
        # corner joins them with... also 8 here; use the plus shape:
        points = [Point(0, 2), Point(4, 2), Point(2, 0), Point(2, 4)]
        mst = mst_weight(points)
        steiner = steiner_heuristic_length(points)
        assert steiner <= mst
        assert steiner == 8  # the centre point joins all four arms

    def test_never_worse_than_mst(self):
        rng = random.Random(2)
        for _ in range(15):
            points = list(
                {
                    Point(rng.randrange(20), rng.randrange(20))
                    for _ in range(rng.randrange(2, 8))
                }
            )
            assert steiner_heuristic_length(points) <= mst_weight(points)

    def test_weight_at_least_two_thirds_mst(self):
        """The rectilinear Steiner ratio bounds any valid tree."""
        rng = random.Random(5)
        for _ in range(10):
            points = list(
                {
                    Point(rng.randrange(30), rng.randrange(30))
                    for _ in range(6)
                }
            )
            steiner = steiner_heuristic_length(points)
            assert 3 * steiner >= 2 * mst_weight(points)

    def test_edges_span_all_terminals(self):
        points = [Point(1, 1), Point(9, 2), Point(4, 8), Point(7, 7)]
        nodes, edges, _ = rectilinear_steiner_tree(points)
        assert len(edges) == len(nodes) - 1
        seen = {0}
        for a, b in edges:
            seen.add(a)
            seen.add(b)
        assert seen == set(range(len(nodes)))
        for p in points:
            assert p in nodes


@given(
    st.sets(
        st.builds(Point, st.integers(0, 15), st.integers(0, 15)),
        min_size=2,
        max_size=6,
    )
)
@settings(max_examples=30, deadline=None)
def test_steiner_sandwiched_between_bounds(points):
    points = sorted(points)
    steiner = steiner_heuristic_length(points)
    mst = mst_weight(points)
    assert steiner <= mst
    # Lower bound: bounding-box semiperimeter.
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    assert steiner >= (max(xs) - min(xs)) + (max(ys) - min(ys))
