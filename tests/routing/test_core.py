"""Tests for the flat cell-id kernel core (`repro.routing.core`).

The property tests pin the tentpole invariant of the refactor: the fused
:class:`SearchSpace` blocked-mask must agree cell-for-cell with the
legacy per-cell composition the kernels used before — ``grid.is_free``
AND ``occupancy.is_routable`` AND not-an-extra-obstacle — including the
own-net-routable case.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.observability import Metrics, use
from repro.routing.astar import astar_route
from repro.routing.core import SearchSpace, astar_search, bfs_search


def _random_scene(seed):
    """Build a seeded grid + occupancy + extra obstacles."""
    rng = random.Random(seed)
    w, h = rng.randrange(4, 14), rng.randrange(4, 14)
    grid = RoutingGrid(w, h)
    for _ in range(rng.randrange(0, (w * h) // 3)):
        grid.set_obstacle(Point(rng.randrange(w), rng.randrange(h)))
    occupancy = Occupancy(grid)
    for net in (1, 2, 3):
        cells = {
            Point(rng.randrange(w), rng.randrange(h))
            for _ in range(rng.randrange(0, 8))
        }
        occupancy.occupy(
            sorted(p for p in cells if occupancy.owner(p) == FREE), net
        )
    extra = {
        Point(rng.randrange(w), rng.randrange(h))
        for _ in range(rng.randrange(0, 6))
    }
    return grid, occupancy, extra


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_searchspace_matches_legacy_routability_composition(seed):
    grid, occupancy, extra = _random_scene(seed)
    for net in (FREE, 1, 2):  # net 1/2 exercise own-net-routable cells
        space = SearchSpace(
            grid, net=net, occupancy=occupancy, extra_obstacles=extra
        )
        for y in range(grid.height):
            for x in range(grid.width):
                p = Point(x, y)
                legacy = (
                    grid.is_free(p)
                    and occupancy.is_routable(p, net)
                    and p not in extra
                )
                assert space.routable(p) == legacy, (net, p)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_extra_obstacle_ids_equal_extra_obstacle_points(seed):
    grid, occupancy, extra = _random_scene(seed)
    by_point = SearchSpace(
        grid, net=1, occupancy=occupancy, extra_obstacles=extra
    )
    by_id = SearchSpace(
        grid,
        net=1,
        occupancy=occupancy,
        extra_obstacle_ids={grid.index(p) for p in extra},
    )
    assert bytes(by_point.blocked) == bytes(by_id.blocked)


def test_searchspace_tolerates_off_chip_extra_obstacles():
    grid = RoutingGrid(5, 5)
    space = SearchSpace(grid, extra_obstacles={Point(-1, 0), Point(4, 17)})
    assert space.routable(Point(0, 0))
    assert not space.routable(Point(-1, 0))  # out of bounds is unroutable
    assert not space.routable(Point(4, 17))


def test_materialize_round_trips_ids():
    grid = RoutingGrid(7, 3)
    space = SearchSpace(grid)
    cells = [Point(2, 1), Point(3, 1), Point(3, 2)]
    ids = [space.index(p) for p in cells]
    assert list(space.materialize(ids)) == cells
    assert [space.point(i) for i in ids] == cells


def test_engines_agree_on_path_length():
    grid = RoutingGrid(12, 12)
    for y in range(1, 12):
        grid.set_obstacle(Point(6, y))
    space = SearchSpace(grid)
    a = astar_search(space, [Point(0, 11)], [Point(11, 11)])
    b = bfs_search(space, [Point(0, 11)], [Point(11, 11)])
    assert a is not None and b is not None
    assert len(a) == len(b)


# --------------------------------------------------------------------------
# Counter semantics: source seeds are not heap pushes


def test_heap_pushes_exclude_source_seeds():
    """Seeding a source is not a push; only real frontier pushes count."""
    grid = RoutingGrid(8, 8)
    registry = Metrics()
    with use(metrics=registry):
        path = astar_route(grid, [Point(0, 0)], [Point(1, 0)])
    assert path is not None and path.length == 1
    # Expanding the single settled cell (0,0) pushes exactly its East and
    # South neighbours; the pre-engine kernel also counted the seed (2+1).
    assert registry.counter("astar.expansions").value == 1
    assert registry.counter("astar.heap_pushes").value == 2


def test_heap_pushes_exclude_every_source_of_a_multi_source_query():
    grid = RoutingGrid(8, 8)
    registry = Metrics()
    with use(metrics=registry):
        path = astar_route(
            grid, [Point(0, 0), Point(7, 7), Point(0, 7)], [Point(1, 0)]
        )
    assert path is not None and path.length == 1
    # Three seeds enter the heap unbilled; the one expansion ((0,0), the
    # nearest seed) pushes its two in-bounds free neighbours.
    assert registry.counter("astar.heap_pushes").value == 2
