"""Tests for the flat cell-id kernel core (`repro.routing.core`).

The property tests pin the tentpole invariant of the refactor: the fused
:class:`SearchSpace` blocked-mask must agree cell-for-cell with the
legacy per-cell composition the kernels used before — ``grid.is_free``
AND ``occupancy.is_routable`` AND not-an-extra-obstacle — including the
own-net-routable case.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import design_by_name
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.observability import Metrics, use
from repro.routing.astar import astar_route
from repro.routing.core import (
    SearchSpace,
    astar_search,
    bfs_search,
    query_space,
)
from repro.routing.core.engine import _astar_scalar, _bfs_scalar


def _random_scene(seed):
    """Build a seeded grid + occupancy + extra obstacles."""
    rng = random.Random(seed)
    w, h = rng.randrange(4, 14), rng.randrange(4, 14)
    grid = RoutingGrid(w, h)
    for _ in range(rng.randrange(0, (w * h) // 3)):
        grid.set_obstacle(Point(rng.randrange(w), rng.randrange(h)))
    occupancy = Occupancy(grid)
    for net in (1, 2, 3):
        cells = {
            Point(rng.randrange(w), rng.randrange(h))
            for _ in range(rng.randrange(0, 8))
        }
        occupancy.occupy(
            sorted(p for p in cells if occupancy.owner(p) == FREE), net
        )
    extra = {
        Point(rng.randrange(w), rng.randrange(h))
        for _ in range(rng.randrange(0, 6))
    }
    return grid, occupancy, extra


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_searchspace_matches_legacy_routability_composition(seed):
    grid, occupancy, extra = _random_scene(seed)
    for net in (FREE, 1, 2):  # net 1/2 exercise own-net-routable cells
        space = SearchSpace(
            grid, net=net, occupancy=occupancy, extra_obstacles=extra
        )
        for y in range(grid.height):
            for x in range(grid.width):
                p = Point(x, y)
                legacy = (
                    grid.is_free(p)
                    and occupancy.is_routable(p, net)
                    and p not in extra
                )
                assert space.routable(p) == legacy, (net, p)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_extra_obstacle_ids_equal_extra_obstacle_points(seed):
    grid, occupancy, extra = _random_scene(seed)
    by_point = SearchSpace(
        grid, net=1, occupancy=occupancy, extra_obstacles=extra
    )
    by_id = SearchSpace(
        grid,
        net=1,
        occupancy=occupancy,
        extra_obstacle_ids={grid.index(p) for p in extra},
    )
    assert bytes(by_point.blocked) == bytes(by_id.blocked)


def test_searchspace_tolerates_off_chip_extra_obstacles():
    grid = RoutingGrid(5, 5)
    space = SearchSpace(grid, extra_obstacles={Point(-1, 0), Point(4, 17)})
    assert space.routable(Point(0, 0))
    assert not space.routable(Point(-1, 0))  # out of bounds is unroutable
    assert not space.routable(Point(4, 17))


def test_materialize_round_trips_ids():
    grid = RoutingGrid(7, 3)
    space = SearchSpace(grid)
    cells = [Point(2, 1), Point(3, 1), Point(3, 2)]
    ids = [space.index(p) for p in cells]
    assert list(space.materialize(ids)) == cells
    assert [space.point(i) for i in ids] == cells


def test_engines_agree_on_path_length():
    grid = RoutingGrid(12, 12)
    for y in range(1, 12):
        grid.set_obstacle(Point(6, y))
    space = SearchSpace(grid)
    a = astar_search(space, [Point(0, 11)], [Point(11, 11)])
    b = bfs_search(space, [Point(0, 11)], [Point(11, 11)])
    assert a is not None and b is not None
    assert len(a) == len(b)


# --------------------------------------------------------------------------
# Counter semantics: source seeds are not heap pushes


def test_heap_pushes_exclude_source_seeds():
    """Seeding a source is not a push; only real frontier pushes count."""
    grid = RoutingGrid(8, 8)
    registry = Metrics()
    with use(metrics=registry):
        path = astar_route(grid, [Point(0, 0)], [Point(1, 0)])
    assert path is not None and path.length == 1
    # Expanding the single settled cell (0,0) pushes exactly its East and
    # South neighbours; the pre-engine kernel also counted the seed (2+1).
    assert registry.counter("astar.expansions").value == 1
    assert registry.counter("astar.heap_pushes").value == 2


def test_heap_pushes_exclude_every_source_of_a_multi_source_query():
    grid = RoutingGrid(8, 8)
    registry = Metrics()
    with use(metrics=registry):
        path = astar_route(
            grid, [Point(0, 0), Point(7, 7), Point(0, 7)], [Point(1, 0)]
        )
    assert path is not None and path.length == 1
    # Three seeds enter the heap unbilled; the one expansion ((0,0), the
    # nearest seed) pushes its two in-bounds free neighbours.
    assert registry.counter("astar.heap_pushes").value == 2


# --------------------------------------------------------------------------
# SpaceCache: incrementally patched checkouts == freshly fused snapshots


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_spacecache_incremental_matches_rebuilt(seed):
    """An incrementally invalidated checkout is bit-identical to a rebuild.

    Randomized interleavings of every Occupancy mutator with cache
    checkouts (varying net and query-local extras, so each checkout must
    also undo the previous one's patches).
    """
    rng = random.Random(seed)
    w, h = rng.randrange(4, 12), rng.randrange(4, 12)
    grid = RoutingGrid(w, h)
    for _ in range(rng.randrange(0, (w * h) // 4)):
        grid.set_obstacle(Point(rng.randrange(w), rng.randrange(h)))
    occupancy = Occupancy(grid)
    size = w * h

    def random_ids(n):
        return [rng.randrange(size) for _ in range(rng.randrange(0, n))]

    for _ in range(rng.randrange(2, 12)):
        op = rng.randrange(5)
        if op == 0:
            net = rng.randrange(1, 4)
            free = [
                cid
                for cid in random_ids(8)
                if occupancy.owner_id(cid) in (FREE, net)
            ]
            occupancy.occupy_ids(free, net)
        elif op == 1:
            occupancy.release_ids(rng.randrange(1, 4))
        elif op == 2:
            occupancy.release_cell_ids(random_ids(6))
        elif op == 3:
            cells = [
                Point(cid % w, cid // w)
                for cid in random_ids(6)
                if occupancy.owner_id(cid) == FREE
            ]
            occupancy.occupy(cells, rng.randrange(1, 4))
        # op == 4: no mutation — consecutive checkouts must also agree.

        net = rng.choice([FREE, 1, 2, 3])
        extra = set(random_ids(4)) or None
        cached = query_space(
            grid, net=net, occupancy=occupancy, extra_obstacle_ids=extra
        )
        fresh = SearchSpace(
            grid, net=net, occupancy=occupancy, extra_obstacle_ids=extra
        )
        assert bytes(cached.blocked) == bytes(fresh.blocked), (net, extra)


# --------------------------------------------------------------------------
# Vectorised engines == scalar reference engines, over the S1-S5 designs


def _design_scene(name, seed):
    """The design's grid plus a seeded occupancy over its valve cells."""
    design = design_by_name(name)
    grid = design.grid
    rng = random.Random(seed)
    occupancy = Occupancy(grid)
    for valve in design.valves:
        occupancy.occupy([valve.position], 1 + (valve.id % 3))
    cells = [
        Point(x, y) for y in range(grid.height) for x in range(grid.width)
    ]
    queries = []
    for _ in range(6):
        srcs = [rng.choice(cells) for _ in range(rng.randrange(1, 3))]
        tgts = [rng.choice(cells) for _ in range(rng.randrange(1, 3))]
        queries.append((rng.choice([FREE, 1, 2, 3]), srcs, tgts))
    return grid, occupancy, queries


@pytest.mark.parametrize("name", ["S1", "S2", "S3", "S4", "S5"])
def test_wave_astar_paths_identical_to_scalar(name):
    """The whole-frontier wave A* returns the scalar engine's exact path."""
    grid, occupancy, queries = _design_scene(name, seed=sum(name.encode()))
    for net, srcs, tgts in queries:
        space = SearchSpace(grid, net=net, occupancy=occupancy)
        wave = astar_search(space, srcs, tgts)  # history=None -> wave
        scalar = _astar_scalar(
            space, [(s[0], s[1]) for s in srcs],
            {(t[0], t[1]) for t in tgts}, None, None, None,
        )
        assert wave == scalar, (net, srcs, tgts)


@pytest.mark.parametrize("name", ["S1", "S2", "S3", "S4", "S5"])
def test_wave_bfs_paths_identical_to_scalar(name):
    """The whole-frontier Lee wave returns the scalar engine's exact path."""
    grid, occupancy, queries = _design_scene(
        name, seed=1 + sum(name.encode())
    )
    for net, srcs, tgts in queries:
        space = SearchSpace(grid, net=net, occupancy=occupancy)
        assert bfs_search(space, srcs, tgts) == _bfs_scalar(
            space, srcs, tgts
        ), (net, srcs, tgts)
