"""Tests for minimum-length bounded routing and serpentine extension."""

import heapq
from itertools import count

import pytest

from repro.geometry import Point
from repro.geometry.point import manhattan
from repro.grid import Occupancy, RoutingGrid
from repro.observability import Metrics, use
from repro.routing import Path, bounded_length_route, extend_path_with_bumps


class TestBoundedLengthRoute:
    def test_exact_shortest_when_bound_allows(self, grid20):
        path = bounded_length_route(grid20, Point(0, 0), Point(5, 0), 5, 7)
        assert path is not None
        assert 5 <= path.length <= 7
        assert path.is_simple()

    def test_detours_to_meet_lower_bound(self, grid20):
        path = bounded_length_route(grid20, Point(0, 0), Point(5, 0), 9, 11)
        assert path is not None
        assert 9 <= path.length <= 11
        assert path.is_simple()

    def test_parity_infeasible_window_returns_none(self, grid20):
        # Manhattan distance 5 (odd); an even-only window is unreachable.
        assert bounded_length_route(grid20, Point(0, 0), Point(5, 0), 6, 6) is None

    def test_min_above_max_raises(self, grid20):
        with pytest.raises(ValueError):
            bounded_length_route(grid20, Point(0, 0), Point(5, 0), 8, 6)

    def test_target_too_far_returns_none(self, grid20):
        assert bounded_length_route(grid20, Point(0, 0), Point(9, 9), 3, 5) is None

    def test_respects_obstacles(self, grid20):
        for y in range(19):
            grid20.set_obstacle(Point(10, y))
        path = bounded_length_route(grid20, Point(0, 0), Point(19, 0), 37, 39)
        if path is not None:
            assert all(grid20.is_free(c) for c in path.cells)
            assert 37 <= path.length <= 39

    def test_respects_occupancy(self, grid20):
        occupancy = Occupancy(grid20)
        occupancy.occupy([Point(3, y) for y in range(20)], net=9)
        path = bounded_length_route(
            grid20, Point(0, 0), Point(1, 0), 3, 5, net=1, occupancy=occupancy
        )
        assert path is not None
        assert all(occupancy.owner(c) != 9 for c in path.cells)

    def test_blocked_endpoint_returns_none(self, grid20):
        grid20.set_obstacle(Point(0, 0))
        assert bounded_length_route(grid20, Point(0, 0), Point(5, 0), 5, 5) is None

    def test_long_detour_in_open_space(self, grid20):
        path = bounded_length_route(grid20, Point(0, 0), Point(2, 0), 20, 22)
        assert path is not None
        assert 20 <= path.length <= 22
        assert path.is_simple()

    def test_state_collapse_reopen_finds_hamiltonian_path(self):
        """Regression: (cell, g)-keyed states miss feasible paths.

        On an open 3x3 grid the only length-8 simple paths from (0,0)
        to (0,2) are Hamiltonian.  Two distinct prefixes can reach the
        same cell at the same g; keying states by ``(cell, g)`` keeps
        only the first-popped one, whose own-cells set walls off every
        continuation — the pre-fix search drained its state graph and
        returned None.  The completeness fallback re-runs with own-set
        disambiguated states and must find the path.
        """
        grid = RoutingGrid(3, 3)
        registry = Metrics()
        with use(metrics=registry):
            path = bounded_length_route(grid, Point(0, 0), Point(0, 2), 8, 8)
        assert path is not None
        assert path.length == 8
        assert path.is_simple()
        assert registry.counter("bounded.reopened").value == 1

    def test_reopen_not_triggered_when_first_pass_succeeds(self, grid20):
        registry = Metrics()
        with use(metrics=registry):
            path = bounded_length_route(grid20, Point(0, 0), Point(5, 0), 9, 11)
        assert path is not None
        assert registry.counter("bounded.reopened").value == 0


def _reference_bounded_route(
    grid, source, target, min_length, max_length, *, extra_obstacles=None
):
    """The pre-optimisation router: own-cells rebuilt per expansion.

    Byte-for-byte the same search order as :func:`bounded_length_route`
    (same F values, same tie-breaking counter, same state keys) — only
    the own-cells bookkeeping differs.  The equivalence tests below pin
    the optimised implementation to this behaviour.
    """
    if min_length > max_length:
        raise ValueError("min_length must not exceed max_length")
    base = manhattan(source, target)
    if base > max_length:
        return None
    if not any(
        (length - base) % 2 == 0
        for length in range(min_length, max_length + 1)
    ):
        return None

    def routable(p):
        if extra_obstacles is not None and p in extra_obstacles:
            return False
        return grid.is_free(p)

    if not routable(source) or not routable(target):
        return None
    start = (source, 0)
    parent = {start: None}
    heap = []
    tie = count()

    def f_value(p, g):
        estimate = g + manhattan(p, target)
        f = float(estimate)
        if estimate < min_length:
            f += 2.0 * (min_length - estimate)
        return f

    def reconstruct(state):
        cells = []
        node = state
        while node is not None:
            cells.append(node[0])
            node = parent[node]
        cells.reverse()
        return cells

    heapq.heappush(heap, (f_value(source, 0), next(tie), start))
    while heap:
        _, _, state = heapq.heappop(heap)
        p, g = state
        if p == target and min_length <= g <= max_length:
            path = Path(reconstruct(state))
            if path.is_simple():
                return path
            continue
        if g >= max_length:
            continue
        own = set(reconstruct(state))
        for q in p.neighbors4():
            if not grid.in_bounds(q) or not routable(q) or q in own:
                continue
            ng = g + 1
            if ng + manhattan(q, target) > max_length:
                continue
            nstate = (q, ng)
            if nstate in parent:
                continue
            parent[nstate] = state
            heapq.heappush(heap, (f_value(q, ng), next(tie), nstate))
    return None


class TestIncrementalOwnCellsEquivalence:
    """The O(1) own-cells optimisation must not change any result."""

    CASES = [
        # (source, target, min_length, max_length)
        ((0, 0), (5, 0), 5, 7),
        ((0, 0), (5, 0), 9, 11),
        ((0, 0), (5, 0), 6, 6),  # parity-infeasible
        ((0, 0), (2, 0), 20, 22),  # long detour, exercises flattening
        ((3, 3), (3, 3), 4, 6),
        ((0, 0), (19, 19), 38, 40),
        ((1, 1), (2, 1), 41, 43),  # detour far above _FLATTEN_AT
    ]

    @pytest.mark.parametrize("case", CASES)
    def test_identical_to_reference(self, grid20, case):
        (sx, sy), (tx, ty), lo, hi = case
        fast = bounded_length_route(grid20, Point(sx, sy), Point(tx, ty), lo, hi)
        slow = _reference_bounded_route(
            grid20, Point(sx, sy), Point(tx, ty), lo, hi
        )
        if slow is None:
            assert fast is None
        else:
            assert fast is not None
            assert fast.cells == slow.cells

    def test_identical_with_obstacles(self, grid20):
        for y in range(15):
            grid20.set_obstacle(Point(10, y))
        obstacles = {Point(x, 8) for x in range(3, 9)}
        fast = bounded_length_route(
            grid20, Point(0, 0), Point(18, 2), 24, 26, extra_obstacles=obstacles
        )
        slow = _reference_bounded_route(
            grid20, Point(0, 0), Point(18, 2), 24, 26, extra_obstacles=obstacles
        )
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert fast.cells == slow.cells


class TestExtendPathWithBumps:
    def test_zero_extra_returns_same_path(self, grid20):
        p = Path([Point(0, 0), Point(1, 0)])
        assert extend_path_with_bumps(grid20, p, 0) is p

    def test_odd_or_negative_extra_rejected(self, grid20):
        p = Path([Point(0, 0), Point(1, 0)])
        assert extend_path_with_bumps(grid20, p, 3) is None
        assert extend_path_with_bumps(grid20, p, -2) is None

    def test_single_bump_adds_two(self, grid20):
        p = Path([Point(5, 5), Point(6, 5), Point(7, 5)])
        extended = extend_path_with_bumps(grid20, p, 2)
        assert extended is not None
        assert extended.length == p.length + 2
        assert extended.source == p.source
        assert extended.target == p.target
        assert extended.is_simple()

    def test_large_extension_nests_bumps(self, grid20):
        p = Path([Point(5, 10), Point(6, 10), Point(7, 10)])
        extended = extend_path_with_bumps(grid20, p, 20)
        assert extended is not None
        assert extended.length == p.length + 20
        assert extended.is_simple()

    def test_extension_fails_in_tight_corridor(self):
        grid = RoutingGrid(10, 1)  # one-row chip: no perpendicular room
        p = Path([Point(0, 0), Point(1, 0), Point(2, 0)])
        assert extend_path_with_bumps(grid, p, 2) is None

    def test_extension_respects_occupancy(self, grid20):
        occupancy = Occupancy(grid20)
        p = Path([Point(5, 5), Point(6, 5), Point(7, 5)])
        occupancy.occupy(p.cells, net=1)
        # Fence the path rows above and below with another net.
        fence = [Point(x, 4) for x in range(4, 9)] + [Point(x, 6) for x in range(4, 9)]
        occupancy.occupy(fence, net=2)
        assert (
            extend_path_with_bumps(grid20, p, 2, net=1, occupancy=occupancy) is None
        )

    def test_extension_new_cells_free(self, grid20):
        occupancy = Occupancy(grid20)
        p = Path([Point(5, 5), Point(6, 5), Point(7, 5)])
        occupancy.occupy(p.cells, net=1)
        extended = extend_path_with_bumps(grid20, p, 4, net=1, occupancy=occupancy)
        assert extended is not None
        for cell in extended.cells:
            assert occupancy.is_routable(cell, net=1)
