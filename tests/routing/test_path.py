"""Tests for routed path objects."""

import pytest

from repro.geometry import Point, Rect
from repro.routing import Path
from repro.routing.path import collect_cells, total_length


def test_single_cell_path():
    p = Path([Point(2, 2)])
    assert p.length == 0
    assert p.source == p.target == Point(2, 2)


def test_adjacency_validated():
    with pytest.raises(ValueError):
        Path([Point(0, 0), Point(2, 0)])
    with pytest.raises(ValueError):
        Path([Point(0, 0), Point(1, 1)])  # diagonal


def test_empty_path_rejected():
    with pytest.raises(ValueError):
        Path([])


def test_length_counts_steps():
    p = Path([Point(0, 0), Point(1, 0), Point(1, 1)])
    assert p.length == 2
    assert len(p) == 3


def test_is_simple():
    assert Path([Point(0, 0), Point(1, 0)]).is_simple()
    loop = Path(
        [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0, 0)]
    )
    assert not loop.is_simple()


def test_reversed():
    p = Path([Point(0, 0), Point(0, 1), Point(1, 1)])
    r = p.reversed()
    assert r.source == p.target
    assert r.target == p.source
    assert r.length == p.length


def test_concat():
    a = Path([Point(0, 0), Point(1, 0)])
    b = Path([Point(1, 0), Point(1, 1)])
    joined = a.concat(b)
    assert joined.cells == (Point(0, 0), Point(1, 0), Point(1, 1))
    assert joined.length == 2


def test_concat_mismatched_raises():
    a = Path([Point(0, 0), Point(1, 0)])
    b = Path([Point(5, 5)])
    with pytest.raises(ValueError):
        a.concat(b)


def test_bounding_box():
    p = Path([Point(1, 1), Point(2, 1), Point(2, 2)])
    assert p.bounding_box() == Rect(1, 1, 2, 2)


def test_accepts_tuple_cells():
    p = Path([(0, 0), (0, 1)])
    assert p.source == Point(0, 0)


def test_total_length_and_collect_cells():
    a = Path([Point(0, 0), Point(1, 0)])
    b = Path([Point(1, 0), Point(1, 1)])
    assert total_length([a, b]) == 2
    assert collect_cells([a, b]) == [Point(0, 0), Point(1, 0), Point(1, 1)]


def test_path_equality_and_hash():
    a = Path([Point(0, 0), Point(1, 0)])
    b = Path([(0, 0), (1, 0)])
    assert a == b
    assert hash(a) == hash(b)
