"""Edge-case tests for the detour stage."""

import pytest

from repro.detour import check_equal, detour_cluster, routed_tree_from_pair
from repro.detour.cluster import RoutedTree
from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid
from repro.routing import Path


def straight(a, b):
    (ax, ay), (bx, by) = a, b
    if ay == by:
        step = 1 if bx >= ax else -1
        return Path([Point(x, ay) for x in range(ax, bx + step, step)])
    step = 1 if by >= ay else -1
    return Path([Point(ax, y) for y in range(ay, by + step, step)])


def test_delta_zero_requires_exact_match():
    tree = routed_tree_from_pair(0, straight((0, 0), (4, 0)))  # 2/2
    equal, _, shorts = check_equal(tree, delta=0)
    assert equal and shorts == []


def test_huge_delta_trivially_matched():
    grid = RoutingGrid(20, 20)
    occupancy = Occupancy(grid)
    tree = RoutedTree(
        cluster_id=1,
        edge_paths={0: straight((2, 5), (4, 5)), 1: straight((14, 5), (4, 5))},
        sequences={0: [0], 1: [1]},
        root=Point(4, 5),
    )
    occupancy.occupy(tree.all_cells(), 1)
    result = detour_cluster(grid, occupancy, tree, delta=100)
    assert result.matched
    assert result.detoured_edges == 0


def test_large_deficit_needs_multiple_rounds():
    """One detour attempt covers one window; big gaps may need several."""
    grid = RoutingGrid(40, 40)
    occupancy = Occupancy(grid)
    tree = RoutedTree(
        cluster_id=2,
        edge_paths={
            0: straight((18, 20), (20, 20)),  # length 2
            1: straight((38, 20), (20, 20)),  # length 18
        },
        sequences={0: [0], 1: [1]},
        root=Point(20, 20),
    )
    occupancy.occupy(tree.all_cells(), 2)
    result = detour_cluster(grid, occupancy, tree, delta=1)
    assert result.matched
    assert tree.mismatch() <= 1
    assert occupancy.cells_of(2) == tree.all_cells()


def test_theta_limits_rounds():
    grid = RoutingGrid(40, 40)
    occupancy = Occupancy(grid)
    tree = RoutedTree(
        cluster_id=3,
        edge_paths={
            0: straight((18, 20), (20, 20)),
            1: straight((38, 20), (20, 20)),
        },
        sequences={0: [0], 1: [1]},
        root=Point(20, 20),
    )
    occupancy.occupy(tree.all_cells(), 3)
    result = detour_cluster(grid, occupancy, tree, delta=1, theta=1)
    # One round may or may not finish; iterations never exceed theta.
    assert result.iterations <= 1


def test_detour_with_even_parity_window():
    """delta=0 with an odd deficit is parity-infeasible on one edge but
    solvable across rounds (each detour changes maxL)."""
    grid = RoutingGrid(30, 30)
    occupancy = Occupancy(grid)
    tree = RoutedTree(
        cluster_id=4,
        edge_paths={
            0: straight((10, 15), (13, 15)),  # length 3
            1: straight((19, 15), (13, 15)),  # length 6
        },
        sequences={0: [0], 1: [1]},
        root=Point(13, 15),
    )
    occupancy.occupy(tree.all_cells(), 4)
    result = detour_cluster(grid, occupancy, tree, delta=1)
    assert result.matched
    assert tree.mismatch() <= 1


def test_detoured_tree_with_escape_keeps_pin_connection():
    grid = RoutingGrid(30, 30)
    occupancy = Occupancy(grid)
    tree = RoutedTree(
        cluster_id=5,
        edge_paths={
            0: straight((10, 15), (12, 15)),
            1: straight((20, 15), (12, 15)),
        },
        sequences={0: [0], 1: [1]},
        root=Point(12, 15),
    )
    tree.escape_path = straight((12, 15), (12, 0))
    occupancy.occupy(tree.all_cells(), 5)
    result = detour_cluster(grid, occupancy, tree, delta=1)
    assert result.matched
    # Escape path untouched; pin end preserved.
    assert tree.escape_path.target == Point(12, 0)
    # Detoured edges avoid the escape channel cells.
    escape_cells = set(tree.escape_path.cells) - {tree.root}
    for path in tree.edge_paths.values():
        assert not (set(path.cells) - {tree.root}) & escape_cells
