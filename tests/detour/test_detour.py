"""Tests for Algorithm 2: check_equal and detour_cluster."""

import pytest

from repro.detour import check_equal, detour_cluster, routed_tree_from_pair
from repro.detour.cluster import RoutedTree
from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid
from repro.routing import Path


def straight(a, b):
    (ax, ay), (bx, by) = a, b
    if ay == by:
        step = 1 if bx >= ax else -1
        return Path([Point(x, ay) for x in range(ax, bx + step, step)])
    step = 1 if by >= ay else -1
    return Path([Point(ax, y) for y in range(ay, by + step, step)])


def unbalanced_tree(cluster_id=1):
    """Two sinks joined at a root that is closer to sink 0."""
    return RoutedTree(
        cluster_id=cluster_id,
        edge_paths={0: straight((2, 5), (4, 5)), 1: straight((10, 5), (4, 5))},
        sequences={0: [0], 1: [1]},
        root=Point(4, 5),
    )


class TestCheckEqual:
    def test_balanced_tree_equal(self):
        tree = routed_tree_from_pair(0, straight((0, 0), (4, 0)))
        equal, max_length, shorts = check_equal(tree, delta=0)
        assert equal
        assert max_length == 2
        assert shorts == []

    def test_unbalanced_tree_reports_short_sink(self):
        tree = unbalanced_tree()
        equal, max_length, shorts = check_equal(tree, delta=1)
        assert not equal
        assert max_length == 6
        assert shorts == [0]

    def test_delta_window_tolerates_small_spread(self):
        tree = routed_tree_from_pair(0, straight((0, 0), (5, 0)))  # 2 vs 3
        equal, _, _ = check_equal(tree, delta=1)
        assert equal
        equal0, _, shorts0 = check_equal(tree, delta=0)
        assert not equal0
        assert len(shorts0) == 1


class TestDetourCluster:
    def test_already_matched_is_noop(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = routed_tree_from_pair(1, straight((0, 0), (4, 0)))
        occupancy.occupy(tree.all_cells(), 1)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        assert result.iterations == 0
        assert result.detoured_edges == 0

    def test_detours_short_edge_to_match(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        assert result.detoured_edges >= 1
        assert tree.mismatch() <= 1
        # Occupancy mirrors the tree.
        assert occupancy.cells_of(tree.cluster_id) == tree.all_cells()

    def test_detoured_paths_still_connect_endpoints(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        detour_cluster(grid, occupancy, tree, delta=1)
        assert tree.edge_paths[0].source == Point(2, 5)
        assert tree.edge_paths[0].target == Point(4, 5)
        assert tree.edge_paths[1] == straight((10, 5), (4, 5))

    def test_failure_restores_original_paths(self):
        # Fence in the short edge so no detour space exists.
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        fence = [Point(x, 4) for x in range(0, 12)] + [
            Point(x, 6) for x in range(0, 12)
        ]
        fence += [Point(0, 5), Point(1, 5), Point(11, 5)]
        occupancy.occupy(fence, 99)
        original = dict(tree.edge_paths)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert not result.matched
        assert tree.edge_paths == original
        assert occupancy.cells_of(tree.cluster_id) == tree.all_cells()

    def test_respects_other_nets(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        # A foreign channel just above the short edge.
        foreign = [Point(x, 4) for x in range(0, 12)]
        occupancy.occupy(foreign, 50)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        for path in tree.edge_paths.values():
            assert all(c not in set(foreign) for c in path.cells)

    def test_three_sink_tree_with_shared_edge(self):
        # Sinks 0/1 hang off an internal node; sink 2 is far away, so 0
        # and 1 both need lengthening.
        grid = RoutingGrid(30, 30)
        occupancy = Occupancy(grid)
        tree = RoutedTree(
            cluster_id=3,
            edge_paths={
                0: straight((8, 10), (10, 10)),  # sink 0 -> m
                1: straight((12, 10), (10, 10)),  # sink 1 -> m
                2: straight((10, 10), (10, 14)),  # m -> root
                3: straight((24, 14), (10, 14)),  # sink 2 -> root
            },
            sequences={0: [0, 2], 1: [1, 2], 2: [3]},
            root=Point(10, 14),
        )
        occupancy.occupy(tree.all_cells(), 3)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        lengths = tree.full_lengths()
        assert max(lengths.values()) - min(lengths.values()) <= 1

    def test_shared_edge_detour_refreshes_max_within_round(self):
        # Regression for the stale-max_length bug: sink 0 cannot detour
        # its own fenced edge and lengthens the shared edge 2 instead,
        # which also lengthens sink 1 — the cluster's longest path moves
        # *mid-round*.  Sink 3's window must aim at the new maximum;
        # against the stale one it undershoots (parity pins every detour
        # length, so the undershoot is deterministic) and a second round
        # was needed.
        grid = RoutingGrid(30, 30)
        occupancy = Occupancy(grid)
        tree = RoutedTree(
            cluster_id=7,
            edge_paths={
                0: straight((11, 16), (15, 16)),  # sink 0 -> m   (len 4)
                1: straight((15, 11), (15, 16)),  # sink 1 -> m   (len 5)
                2: straight((15, 16), (15, 20)),  # m -> root     (len 4)
                3: straight((25, 20), (15, 20)),  # sink 2 -> root (len 10)
                4: straight((8, 20), (15, 20)),  # sink 3 -> root (len 7)
            },
            sequences={0: [0, 2], 1: [1, 2], 2: [3], 3: [4]},
            root=Point(15, 20),
        )
        occupancy.occupy(tree.all_cells(), 7)
        # Fence edge 0 into its corridor so sink 0 must use edge 2.
        fence = [Point(x, 15) for x in range(10, 15)] + [
            Point(x, 17) for x in range(10, 15)
        ]
        occupancy.occupy(fence, 99)
        # Lengths: sink0=8, sink1=9, sink2=10 (max), sink3=7; delta=1
        # makes sinks 0 and 3 short.  Sink 0's +2 on edge 2 pushes sink 1
        # to 11 — the new max — before sink 3 is processed.
        assert tree.full_lengths() == {0: 8, 1: 9, 2: 10, 3: 7}
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        assert result.iterations == 1, (
            "stale max_length: sink 3 undershot and needed a second round"
        )
        lengths = tree.full_lengths()
        assert max(lengths.values()) - min(lengths.values()) <= 1
        assert occupancy.cells_of(7) == tree.all_cells()

    def test_rollback_resets_detoured_edges_counter(self):
        # Regression: sink 0's successful detour was still counted after
        # sink 1's failure rolled every path back.
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = RoutedTree(
            cluster_id=5,
            edge_paths={
                0: straight((6, 10), (10, 10)),  # sink 0 -> root (len 4)
                1: straight((14, 10), (10, 10)),  # sink 1 -> root (len 4)
                2: straight((10, 2), (10, 10)),  # sink 2 -> root (len 8)
            },
            sequences={0: [0], 1: [1], 2: [2]},
            root=Point(10, 10),
        )
        occupancy.occupy(tree.all_cells(), 5)
        # Sink 0 has room to detour; sink 1 is fenced in completely.
        fence = (
            [Point(x, 9) for x in range(11, 16)]
            + [Point(x, 11) for x in range(11, 16)]
            + [Point(15, 10)]
        )
        occupancy.occupy(fence, 99)
        original = dict(tree.edge_paths)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert not result.matched
        assert result.detoured_edges == 0, (
            "rolled-back detours must not be reported as work done"
        )
        assert tree.edge_paths == original
        assert occupancy.cells_of(5) == tree.all_cells()

    def test_escape_path_preserved(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        tree.escape_path = straight((4, 5), (4, 0))
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        assert tree.escape_path == straight((4, 5), (4, 0))
        assert occupancy.cells_of(tree.cluster_id) == tree.all_cells()
