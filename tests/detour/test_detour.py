"""Tests for Algorithm 2: check_equal and detour_cluster."""

import pytest

from repro.detour import check_equal, detour_cluster, routed_tree_from_pair
from repro.detour.cluster import RoutedTree
from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid
from repro.routing import Path


def straight(a, b):
    (ax, ay), (bx, by) = a, b
    if ay == by:
        step = 1 if bx >= ax else -1
        return Path([Point(x, ay) for x in range(ax, bx + step, step)])
    step = 1 if by >= ay else -1
    return Path([Point(ax, y) for y in range(ay, by + step, step)])


def unbalanced_tree(cluster_id=1):
    """Two sinks joined at a root that is closer to sink 0."""
    return RoutedTree(
        cluster_id=cluster_id,
        edge_paths={0: straight((2, 5), (4, 5)), 1: straight((10, 5), (4, 5))},
        sequences={0: [0], 1: [1]},
        root=Point(4, 5),
    )


class TestCheckEqual:
    def test_balanced_tree_equal(self):
        tree = routed_tree_from_pair(0, straight((0, 0), (4, 0)))
        equal, max_length, shorts = check_equal(tree, delta=0)
        assert equal
        assert max_length == 2
        assert shorts == []

    def test_unbalanced_tree_reports_short_sink(self):
        tree = unbalanced_tree()
        equal, max_length, shorts = check_equal(tree, delta=1)
        assert not equal
        assert max_length == 6
        assert shorts == [0]

    def test_delta_window_tolerates_small_spread(self):
        tree = routed_tree_from_pair(0, straight((0, 0), (5, 0)))  # 2 vs 3
        equal, _, _ = check_equal(tree, delta=1)
        assert equal
        equal0, _, shorts0 = check_equal(tree, delta=0)
        assert not equal0
        assert len(shorts0) == 1


class TestDetourCluster:
    def test_already_matched_is_noop(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = routed_tree_from_pair(1, straight((0, 0), (4, 0)))
        occupancy.occupy(tree.all_cells(), 1)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        assert result.iterations == 0
        assert result.detoured_edges == 0

    def test_detours_short_edge_to_match(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        assert result.detoured_edges >= 1
        assert tree.mismatch() <= 1
        # Occupancy mirrors the tree.
        assert occupancy.cells_of(tree.cluster_id) == tree.all_cells()

    def test_detoured_paths_still_connect_endpoints(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        detour_cluster(grid, occupancy, tree, delta=1)
        assert tree.edge_paths[0].source == Point(2, 5)
        assert tree.edge_paths[0].target == Point(4, 5)
        assert tree.edge_paths[1] == straight((10, 5), (4, 5))

    def test_failure_restores_original_paths(self):
        # Fence in the short edge so no detour space exists.
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        fence = [Point(x, 4) for x in range(0, 12)] + [
            Point(x, 6) for x in range(0, 12)
        ]
        fence += [Point(0, 5), Point(1, 5), Point(11, 5)]
        occupancy.occupy(fence, 99)
        original = dict(tree.edge_paths)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert not result.matched
        assert tree.edge_paths == original
        assert occupancy.cells_of(tree.cluster_id) == tree.all_cells()

    def test_respects_other_nets(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        # A foreign channel just above the short edge.
        foreign = [Point(x, 4) for x in range(0, 12)]
        occupancy.occupy(foreign, 50)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        for path in tree.edge_paths.values():
            assert all(c not in set(foreign) for c in path.cells)

    def test_three_sink_tree_with_shared_edge(self):
        # Sinks 0/1 hang off an internal node; sink 2 is far away, so 0
        # and 1 both need lengthening.
        grid = RoutingGrid(30, 30)
        occupancy = Occupancy(grid)
        tree = RoutedTree(
            cluster_id=3,
            edge_paths={
                0: straight((8, 10), (10, 10)),  # sink 0 -> m
                1: straight((12, 10), (10, 10)),  # sink 1 -> m
                2: straight((10, 10), (10, 14)),  # m -> root
                3: straight((24, 14), (10, 14)),  # sink 2 -> root
            },
            sequences={0: [0, 2], 1: [1, 2], 2: [3]},
            root=Point(10, 14),
        )
        occupancy.occupy(tree.all_cells(), 3)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        lengths = tree.full_lengths()
        assert max(lengths.values()) - min(lengths.values()) <= 1

    def test_escape_path_preserved(self):
        grid = RoutingGrid(20, 20)
        occupancy = Occupancy(grid)
        tree = unbalanced_tree()
        tree.escape_path = straight((4, 5), (4, 0))
        occupancy.occupy(tree.all_cells(), tree.cluster_id)
        result = detour_cluster(grid, occupancy, tree, delta=1)
        assert result.matched
        assert tree.escape_path == straight((4, 5), (4, 0))
        assert occupancy.cells_of(tree.cluster_id) == tree.all_cells()
