"""Tests for the routed-tree model of length-matching clusters."""

import pytest

from repro.detour import RoutedTree, routed_tree_from_pair
from repro.detour.cluster import routed_tree_from_candidate
from repro.dme.tree import CandidateTree, TopologyNode
from repro.geometry import Point
from repro.routing import Path


def straight(a, b):
    """A straight path between two collinear points."""
    (ax, ay), (bx, by) = a, b
    cells = []
    if ay == by:
        step = 1 if bx >= ax else -1
        cells = [Point(x, ay) for x in range(ax, bx + step, step)]
    else:
        step = 1 if by >= ay else -1
        cells = [Point(ax, y) for y in range(ay, by + step, step)]
    return Path(cells)


class TestRoutedTreeFromPair:
    def test_even_length_split(self):
        path = straight((0, 0), (4, 0))
        tree = routed_tree_from_pair(5, path)
        assert tree.cluster_id == 5
        assert tree.root == Point(2, 0)
        assert tree.full_length(0) == 2
        assert tree.full_length(1) == 2
        assert tree.mismatch() == 0

    def test_odd_length_split_off_by_one(self):
        path = straight((0, 0), (5, 0))
        tree = routed_tree_from_pair(1, path)
        lengths = tree.full_lengths()
        assert sorted(lengths.values()) == [2, 3]
        assert tree.mismatch() == 1

    def test_edges_run_child_to_parent(self):
        path = straight((0, 0), (4, 0))
        tree = routed_tree_from_pair(0, path)
        assert tree.edge_paths[0].source == Point(0, 0)
        assert tree.edge_paths[0].target == tree.root
        assert tree.edge_paths[1].source == Point(4, 0)
        assert tree.edge_paths[1].target == tree.root

    def test_all_cells_union(self):
        path = straight((0, 0), (4, 0))
        tree = routed_tree_from_pair(0, path)
        assert tree.all_cells() == set(path.cells)

    def test_escape_path_adds_to_all_sinks(self):
        path = straight((0, 0), (4, 0))
        tree = routed_tree_from_pair(0, path)
        before = tree.full_lengths()
        tree.escape_path = straight((2, 0), (2, 5))
        after = tree.full_lengths()
        assert all(after[s] == before[s] + 5 for s in before)
        assert tree.mismatch() == 0
        assert tree.total_length() == 4 + 5


class TestRoutedTreeFromCandidate:
    def make_candidate(self):
        leaf_a = TopologyNode(sink=0, position=Point(0, 0))
        leaf_b = TopologyNode(sink=1, position=Point(4, 0))
        leaf_c = TopologyNode(sink=2, position=Point(0, 4))
        leaf_d = TopologyNode(sink=3, position=Point(4, 4))
        m1 = TopologyNode(children=[leaf_a, leaf_b], position=Point(2, 0))
        m2 = TopologyNode(children=[leaf_c, leaf_d], position=Point(2, 4))
        root = TopologyNode(children=[m1, m2], position=Point(2, 2))
        return CandidateTree(9, root)

    def routed(self):
        tree = self.make_candidate()
        edges = tree.edges()
        paths = {}
        for idx, edge in enumerate(edges):
            if edge.parent.x == edge.child.x or edge.parent.y == edge.child.y:
                paths[idx] = straight(edge.child, edge.parent)
            else:
                raise AssertionError("unexpected non-straight edge")
        return tree, routed_tree_from_candidate(tree, paths)

    def test_sequences_are_leaf_first(self):
        candidate, routed = self.routed()
        for sink, seq in routed.sequences.items():
            assert len(seq) == 2
            first = routed.edge_paths[seq[0]]
            # The first path of the sequence touches the sink's position.
            sink_pos = candidate.sink_positions()[sink]
            assert first.source == sink_pos
            last = routed.edge_paths[seq[1]]
            assert last.target == routed.root

    def test_full_lengths_balanced(self):
        _, routed = self.routed()
        lengths = routed.full_lengths()
        assert set(lengths.values()) == {4}
        assert routed.mismatch() == 0

    def test_missing_edge_path_rejected(self):
        tree = self.make_candidate()
        with pytest.raises(ValueError):
            routed_tree_from_candidate(tree, {0: straight((0, 0), (2, 0))})

    def test_reversed_input_paths_normalised(self):
        tree = self.make_candidate()
        edges = tree.edges()
        paths = {
            idx: straight(edge.parent, edge.child)  # deliberately reversed
            for idx, edge in enumerate(edges)
        }
        routed = routed_tree_from_candidate(tree, paths)
        for sink, seq in routed.sequences.items():
            sink_pos = tree.sink_positions()[sink]
            assert routed.edge_paths[seq[0]].source == sink_pos

    def test_total_length(self):
        _, routed = self.routed()
        assert routed.total_length() == 4 * 2 + 2 * 2  # 4 leaf edges + 2 spines
