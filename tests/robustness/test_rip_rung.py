"""The rip-neighbors rung: eviction, healing and escalation accounting.

The geometry is a 7x7 chip split by a fault wall at y=3 with two doors
(x=2 and x=4).  Net A's old route crossed the wall where a fault now
sits; net B (healthy) camps on door x=2 *and* holds both approach cells
of door x=4 with its own terminals, so A cannot re-route until B is
evicted.  After eviction, A takes door x=2 and B trivially re-routes
through door x=4 — the textbook rip-rung scenario.
"""

import pytest

from repro.core.result import NetReport, PacorResult, segments_of_path
from repro.designs import Design
from repro.geometry import Point
from repro.observability import Metrics, use
from repro.robustness.faultmap import FaultMap
from repro.robustness.repair import RepairConfig, repair_result
from repro.valves import ActivationSequence, Valve

WALL_Y = 3
DOORS = (2, 4)


def _design() -> Design:
    grid_size = 7
    from repro.grid import RoutingGrid

    design = Design(
        name="rip-arena",
        grid=RoutingGrid(grid_size, grid_size),
        valves=[
            Valve(0, Point(0, 1), ActivationSequence("01")),
            Valve(1, Point(4, 2), ActivationSequence("10")),
        ],
        control_pins=[Point(0, 5), Point(4, 4)],
    )
    design.validate()
    return design


def _report(net_id: int, path, pin: Point) -> NetReport:
    return NetReport(
        net_id=net_id,
        origin_cluster=net_id,
        valve_ids=[net_id],
        length_matching=False,
        routed=True,
        pin=pin,
        cells=frozenset(path),
        segments=frozenset(segments_of_path(path)),
        channel_length=len(path) - 1,
    )


def _result_doc(design: Design) -> dict:
    # Net A: straight down column x=0, through the future fault (0, 3).
    path_a = [Point(0, y) for y in range(1, 6)]
    # Net B: healthy detour that blocks door x=2; its terminals (4, 2)
    # and (4, 4) are the only approaches to door x=4.
    path_b = [
        Point(4, 2),
        Point(3, 2),
        Point(2, 2),
        Point(2, 3),
        Point(2, 4),
        Point(3, 4),
        Point(4, 4),
    ]
    result = PacorResult(
        design_name=design.name,
        method="PACOR",
        delta=design.delta,
        n_valves=2,
        n_lm_clusters=0,
        nets=[
            _report(0, path_a, Point(0, 5)),
            _report(1, path_b, Point(4, 4)),
        ],
    )
    return result.to_json()


def _wall_faults() -> FaultMap:
    fm = FaultMap()
    for x in range(7):
        if x not in DOORS:
            fm.add_cell(Point(x, WALL_Y))
    return fm


class TestRipRung:
    def test_rip_heals_net_and_reroutes_victim(self):
        design = _design()
        outcome = repair_result(design, _result_doc(design), _wall_faults())
        assert outcome.repaired == {0: "rip"}
        assert outcome.degraded_nets == []
        reports = {n.net_id: n for n in outcome.result.nets}
        # A re-routed through door x=2 to its original pin.
        assert reports[0].routed and reports[0].pin == Point(0, 5)
        assert Point(2, 3) in reports[0].cells
        # B was evicted, then healed through the now-only-free door x=4.
        assert reports[1].routed and reports[1].pin == Point(4, 4)
        assert reports[1].cells == {Point(4, 2), Point(4, 3), Point(4, 4)}
        assert any("eviction" in e for e in outcome.result.events)

    def test_escalation_counters_climb_the_ladder(self):
        design = _design()
        metrics = Metrics()
        with use(metrics=metrics):
            outcome = repair_result(
                design, _result_doc(design), _wall_faults()
            )
        assert outcome.repaired == {0: "rip"}
        counters = metrics.counter_values()
        # local -> full and full -> rip are two distinct escalations.
        assert counters["repair.escalations"] >= 2
        assert counters["repair.rips"] == 1

    def test_disabled_rung_degrades_instead(self):
        design = _design()
        config = RepairConfig(rip_neighbor_limit=0)
        metrics = Metrics()
        with use(metrics=metrics):
            outcome = repair_result(
                design, _result_doc(design), _wall_faults(), config=config
            )
        assert outcome.repaired == {}
        assert outcome.degraded_nets == [0]
        counters = metrics.counter_values()
        assert "repair.rips" not in counters
        # The healthy victim keeps its original route untouched.
        reports = {n.net_id: n for n in outcome.result.nets}
        assert Point(2, 3) in reports[1].cells

    def test_rollback_when_victim_cannot_reroute(self):
        # Fuse door x=4 too: after evicting B, the victim has nowhere
        # to go, so the rung must roll back and degrade A instead.
        design = _design()
        fm = _wall_faults()
        fm.add_cell(Point(4, WALL_Y))
        outcome = repair_result(design, _result_doc(design), fm)
        assert outcome.repaired == {}
        assert outcome.degraded_nets == [0]
        reports = {n.net_id: n for n in outcome.result.nets}
        # B survived the failed eviction with its exact old route.
        assert reports[1].routed
        assert Point(2, 3) in reports[1].cells
        assert len(reports[1].cells) == 7
