"""The fault-injection harness itself: specs, determinism, arming."""

import pytest

from repro.robustness.faults import (
    INJECTION_POINTS,
    FaultInjected,
    FaultInjector,
    FaultSpec,
    active,
    clear,
    fires,
    inject,
    install,
)


def test_spec_rejects_unknown_point():
    with pytest.raises(ValueError, match="unknown injection point"):
        FaultSpec("no_such_point")


def test_spec_rejects_bad_probability_and_max_fires():
    with pytest.raises(ValueError):
        FaultSpec("mcf_solver_raise", probability=1.5)
    with pytest.raises(ValueError):
        FaultSpec("mcf_solver_raise", probability=-0.1)
    with pytest.raises(ValueError):
        FaultSpec("mcf_solver_raise", max_fires=-1)


def test_injector_rejects_duplicate_points():
    with pytest.raises(ValueError, match="duplicate spec"):
        FaultInjector.of(
            FaultSpec("mcf_solver_raise"), FaultSpec("mcf_solver_raise")
        )


def test_disarmed_fires_is_false():
    assert active() is None
    for point in INJECTION_POINTS:
        assert fires(point) is False


def test_unarmed_point_never_fires():
    with inject(FaultSpec("mcf_solver_raise")):
        assert fires("candidate_generation_empty") is False
        assert fires("mcf_solver_raise") is True


def test_fire_on_calls_hits_exact_indices():
    with inject(
        FaultSpec("negotiation_edge_failure", fire_on_calls=(2, 4))
    ) as inj:
        hits = [fires("negotiation_edge_failure") for _ in range(5)]
    assert hits == [False, True, False, True, False]
    assert inj.fire_count("negotiation_edge_failure") == 2
    assert [r.call_index for r in inj.fired] == [2, 4]


def test_max_fires_caps_hits():
    with inject(FaultSpec("mcf_solver_raise", max_fires=2)) as inj:
        hits = [fires("mcf_solver_raise") for _ in range(5)]
    assert hits == [True, True, False, False, False]
    assert inj.fire_count("mcf_solver_raise") == 2


def test_probabilistic_firing_is_seed_deterministic():
    def run(seed):
        with inject(
            FaultSpec("astar_budget_exhaustion", probability=0.5), seed=seed
        ):
            return [fires("astar_budget_exhaustion") for _ in range(50)]

    a = run(7)
    b = run(7)
    c = run(8)
    assert a == b
    assert a != c  # 50 coin flips colliding across seeds is ~1 in 2^50
    assert any(a) and not all(a)


def test_inject_contextmanager_clears_even_on_error():
    with pytest.raises(FaultInjected):
        with inject(FaultSpec("mcf_solver_raise")):
            assert active() is not None
            raise FaultInjected("boom")
    assert active() is None


def test_install_and_clear():
    injector = FaultInjector.of(FaultSpec("occupancy_corruption"))
    install(injector)
    assert active() is injector
    assert fires("occupancy_corruption") is True
    clear()
    assert active() is None


def test_calls_counted_even_when_not_armed_for_point():
    with inject(FaultSpec("mcf_solver_raise")) as inj:
        fires("candidate_generation_empty")
        fires("candidate_generation_empty")
    assert inj.calls["candidate_generation_empty"] == 2
    assert inj.fire_count("candidate_generation_empty") == 0


def test_fault_injected_is_not_a_pacor_error():
    from repro.robustness.errors import PacorError

    assert not issubclass(FaultInjected, PacorError)
    assert issubclass(FaultInjected, RuntimeError)
