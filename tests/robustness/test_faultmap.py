"""The physical fault model: documents, validation, normalisation.

Covers :mod:`repro.robustness.faultmap`'s three contracts:

* the versioned JSON document round-trips losslessly (in memory and
  through a file) and malformed documents are rejected with a named
  field;
* :meth:`FaultMap.validate` rejects faults that do not fit the design
  (off-grid cells, unknown valve ids);
* :meth:`FaultMap.normalized` canonicalises valve-position cell faults
  into stuck valves, deduplicates, and preserves event order.
"""

import json

import pytest

from repro.designs import design_by_name
from repro.geometry.point import Point
from repro.robustness.errors import ConfigError, FaultFormatError
from repro.robustness.faultmap import (
    EVENT_STAGES,
    FAULTMAP_VERSION,
    FaultEvent,
    FaultMap,
)


def _sample_map():
    return FaultMap(
        faulty_cells=[Point(3, 4), Point(0, 0)],
        stuck_valves=[7, 2],
        events=[
            FaultEvent(stage="escape", cell=Point(5, 5)),
            FaultEvent(stage="final", valve=1),
        ],
    )


# -- documents ---------------------------------------------------------------


class TestFaultMapFormat:
    def test_json_round_trip_is_lossless(self):
        fm = _sample_map()
        back = FaultMap.from_json(fm.to_json())
        assert back.to_json() == fm.to_json()
        assert set(back.faulty_cells) == set(fm.faulty_cells)
        assert sorted(back.stuck_valves) == sorted(fm.stuck_valves)
        assert [e.to_json() for e in back.events] == [
            e.to_json() for e in fm.events
        ]

    def test_file_round_trip(self, tmp_path):
        fm = _sample_map()
        path = tmp_path / "faults.json"
        fm.save(path)
        assert FaultMap.load(path).to_json() == fm.to_json()

    def test_document_is_versioned(self):
        assert _sample_map().to_json()["version"] == FAULTMAP_VERSION

    def test_rejects_unknown_version(self):
        doc = _sample_map().to_json()
        doc["version"] = 99
        with pytest.raises(FaultFormatError, match="version 99"):
            FaultMap.from_json(doc)

    def test_rejects_non_object_document(self):
        with pytest.raises(FaultFormatError, match="JSON object"):
            FaultMap.from_json([1, 2, 3])

    def test_rejects_malformed_cell(self):
        doc = {"version": FAULTMAP_VERSION, "faulty_cells": [[1]]}
        with pytest.raises(FaultFormatError) as excinfo:
            FaultMap.from_json(doc)
        assert excinfo.value.field == "faulty_cells"

    def test_rejects_malformed_valve_list(self):
        doc = {"version": FAULTMAP_VERSION, "stuck_valves": ["x"]}
        with pytest.raises(FaultFormatError) as excinfo:
            FaultMap.from_json(doc)
        assert excinfo.value.field == "stuck_valves"

    def test_rejects_event_naming_both_cell_and_valve(self):
        doc = {
            "version": FAULTMAP_VERSION,
            "events": [{"stage": "escape", "cell": [1, 1], "valve": 0}],
        }
        with pytest.raises(FaultFormatError, match="exactly one"):
            FaultMap.from_json(doc)

    def test_load_rejects_non_json_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.raises(FaultFormatError, match="not valid JSON"):
            FaultMap.load(path)
        try:
            FaultMap.load(path)
        except FaultFormatError as exc:
            assert str(path) in str(exc)

    def test_cell_ids_are_sorted_and_width_relative(self):
        fm = FaultMap(faulty_cells=[Point(3, 2), Point(0, 1)])
        assert fm.cell_ids(10) == [10, 23]
        assert fm.cell_ids(5) == [5, 13]


# -- events ------------------------------------------------------------------


class TestFaultEvent:
    def test_rejects_unknown_stage(self):
        with pytest.raises(ConfigError, match="unknown fault-event stage"):
            FaultEvent(stage="warmup", cell=Point(1, 1))

    def test_rejects_neither_cell_nor_valve(self):
        with pytest.raises(ConfigError, match="exactly one"):
            FaultEvent(stage="escape")

    def test_pop_events_removes_only_the_due_stage(self):
        fm = _sample_map()
        due = fm.pop_events("escape")
        assert [e.stage for e in due] == ["escape"]
        assert [e.stage for e in fm.events] == ["final"]
        assert fm.pop_events("escape") == []

    def test_every_documented_stage_is_constructible(self):
        for stage in EVENT_STAGES:
            FaultEvent(stage=stage, cell=Point(0, 0))


# -- design fit --------------------------------------------------------------


class TestDesignFit:
    def test_validate_accepts_a_fitting_map(self):
        design = design_by_name("S1")
        valve = design.valves[0]
        fm = FaultMap(faulty_cells=[Point(0, 0)], stuck_valves=[valve.id])
        fm.validate(design)  # must not raise

    def test_validate_rejects_off_grid_cell(self):
        design = design_by_name("S1")
        fm = FaultMap(faulty_cells=[Point(design.grid.width, 0)])
        with pytest.raises(FaultFormatError, match="off the"):
            fm.validate(design)

    def test_validate_rejects_unknown_valve(self):
        design = design_by_name("S1")
        fm = FaultMap(stuck_valves=[10_000])
        with pytest.raises(FaultFormatError, match="unknown"):
            fm.validate(design)

    def test_validate_rejects_off_grid_event_cell(self):
        design = design_by_name("S1")
        fm = FaultMap(
            events=[FaultEvent(stage="final", cell=Point(-1, 0))]
        )
        with pytest.raises(FaultFormatError, match="off-grid"):
            fm.validate(design)

    def test_normalized_converts_valve_position_cells(self):
        design = design_by_name("S1")
        valve = design.valves[0]
        fm = FaultMap(faulty_cells=[valve.position, Point(0, 0)])
        out = fm.normalized(design)
        assert out.stuck_valves == [valve.id]
        assert out.faulty_cells == [Point(0, 0)]

    def test_normalized_converts_valve_position_events(self):
        design = design_by_name("S1")
        valve = design.valves[0]
        fm = FaultMap(
            events=[FaultEvent(stage="escape", cell=valve.position)]
        )
        out = fm.normalized(design)
        assert out.events[0].valve == valve.id
        assert out.events[0].cell is None

    def test_normalized_deduplicates(self):
        design = design_by_name("S1")
        valve = design.valves[0]
        fm = FaultMap(
            faulty_cells=[Point(0, 0), Point(0, 0), valve.position],
            stuck_valves=[valve.id],
        )
        out = fm.normalized(design)
        assert out.faulty_cells == [Point(0, 0)]
        assert out.stuck_valves == [valve.id]

    def test_normalized_does_not_mutate_the_original(self):
        design = design_by_name("S1")
        valve = design.valves[0]
        fm = FaultMap(faulty_cells=[valve.position])
        before = json.dumps(fm.to_json(), sort_keys=True)
        fm.normalized(design)
        assert json.dumps(fm.to_json(), sort_keys=True) == before
