"""Physical-fault repair suite: damage assessment, healing, determinism.

Acceptance criteria from the robustness PR:

* the flat damage sweep (:func:`affected_nets`) agrees with the
  brute-force oracle across randomised fault batches and seeds;
* repair rips up and re-routes *only* the intersecting nets — every
  unaffected net's report survives verbatim;
* a repaired design is still internally consistent
  (:meth:`Occupancy.find_inconsistencies`) and passes
  :func:`verify_result`;
* the same seed and fault schedule yield bit-identical repaired
  routes; a fault-free run is bit-identical to a run with no fault
  map at all;
* the timed injector points ``"valve_stuck"`` and ``"cell_blockage"``
  disturb a live flow and the router heals (or degrades) structurally.
"""

import json
import random

import pytest

from repro.analysis import verify_result
from repro.core.pacor import PacorRouter
from repro.designs import design_by_name, generate_fault_scenario
from repro.geometry.point import Point
from repro.grid.occupancy import FAULT_NET, Occupancy
from repro.robustness import faults
from repro.robustness.faultmap import FaultEvent, FaultMap
from repro.robustness.faults import FaultSpec
from repro.robustness.repair import (
    affected_nets,
    affected_nets_brute_force,
    repair_result,
)


def _canonical(result):
    """Result JSON with the only nondeterministic field (runtime) removed."""
    doc = result.to_json()
    doc["summary"].pop("runtime_s")
    return json.dumps(doc, sort_keys=True)


def _routed(design_name="S1"):
    design = design_by_name(design_name)
    router = PacorRouter(design)
    result = router.run()
    assert result.completion_rate == 1.0
    return design, router, result


def _channel_cell(design, result):
    """A routed cell that is neither a valve seat nor a control pin."""
    keep_out = {v.position for v in design.valves}
    for net in result.nets:
        if not net.routed:
            continue
        keep_out.add(net.pin)
    for net in sorted(result.nets, key=lambda n: n.net_id):
        if not net.routed:
            continue
        for cell in sorted(net.cells):
            if cell not in keep_out:
                return net.net_id, cell
    raise AssertionError("no pure channel cell found")


# -- damage assessment: property + oracle ------------------------------------


class TestDamageAssessment:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_flat_sweep_matches_brute_force(self, seed):
        design, router, _ = _routed("S2" if seed % 2 else "S1")
        occupancy = router.occupancy
        grid = design.grid
        all_cids = range(grid.width * grid.height)
        buckets = {nid: occupancy.cells_of_ids(nid) for nid in occupancy.nets()}
        rng = random.Random(seed)
        for batch in range(10):
            fault_cids = rng.sample(list(all_cids), rng.randint(0, 12))
            assert affected_nets(occupancy, fault_cids) == (
                affected_nets_brute_force(buckets, fault_cids)
            ), f"divergence at seed={seed} batch={batch}: {fault_cids}"

    def test_faults_on_free_cells_hit_nothing(self):
        design, router, _ = _routed()
        free = [
            cid
            for cid in range(design.grid.width * design.grid.height)
            if router.occupancy.owner_id(cid) < 0
        ]
        assert affected_nets(router.occupancy, free[:20]) == []

    def test_fault_net_owner_is_not_a_net(self):
        design = design_by_name("S1")
        occupancy = Occupancy(design.grid)
        occupancy.occupy_ids([0, 1], FAULT_NET)
        occupancy.occupy_ids([2], 5)
        assert affected_nets(occupancy, [0, 1, 2]) == [5]


# -- post-hoc repair ---------------------------------------------------------


class TestRepairResult:
    def test_reroutes_only_intersecting_nets(self):
        design, _, result = _routed()
        doc = result.to_json()
        victim, cell = _channel_cell(design, result)
        outcome = repair_result(
            design, doc, FaultMap(faulty_cells=[cell])
        )
        assert outcome.affected == [victim]
        assert victim in outcome.repaired
        assert outcome.degraded_nets == []
        before = {n.net_id: n for n in result.nets}
        for net in outcome.result.nets:
            if net.net_id == victim:
                assert cell not in net.cells
                assert net.routed
            else:
                assert net == before[net.net_id]

    def test_repaired_design_is_consistent_and_verifies(self):
        design, _, result = _routed()
        _, cell = _channel_cell(design, result)
        outcome = repair_result(
            design, result.to_json(), FaultMap(faulty_cells=[cell])
        )
        verify_result(design, outcome.result)
        width = design.grid.width
        occupancy = Occupancy(design.grid)
        for net in outcome.result.nets:
            if net.routed:
                occupancy.occupy_ids(
                    (c.y * width + c.x for c in net.cells), net.net_id
                )
        assert occupancy.find_inconsistencies() == []

    def test_repair_is_deterministic(self):
        design, _, result = _routed()
        doc = result.to_json()
        _, cell = _channel_cell(design, result)
        fm_doc = FaultMap(faulty_cells=[cell]).to_json()
        first = repair_result(design, doc, FaultMap.from_json(fm_doc))
        second = repair_result(design, doc, FaultMap.from_json(fm_doc))
        assert _canonical(first.result) == _canonical(second.result)
        assert first.repaired == second.repaired

    def test_empty_fault_map_changes_nothing(self):
        design, _, result = _routed()
        outcome = repair_result(design, result.to_json(), FaultMap())
        assert outcome.affected == []
        assert outcome.repaired == {}
        assert _canonical(outcome.result) == _canonical(result)

    def test_stuck_valve_drops_the_valve(self):
        design, _, result = _routed()
        vid = min(v.id for v in design.valves)
        outcome = repair_result(
            design, result.to_json(), FaultMap(stuck_valves=[vid])
        )
        assert vid in outcome.dropped_valves
        for net in outcome.result.nets:
            if net.routed:
                assert design.valve_by_id()[vid].position not in net.cells

    def test_generated_scenario_repairs(self):
        design, _, result = _routed("S2")
        routed_cells = sorted(
            {c for n in result.nets if n.routed for c in n.cells}
        )
        fm = generate_fault_scenario(
            design, n_cell_faults=2, seed=11, target_cells=routed_cells
        )
        outcome = repair_result(design, result.to_json(), fm)
        assert outcome.affected
        verify_result(design, outcome.result)


# -- in-flow faults (timed events + injector) --------------------------------


class TestInFlowFaults:
    def test_fault_free_run_is_bit_identical_to_no_fault_map(self):
        design = design_by_name("S1")
        plain = PacorRouter(design).run()
        empty = PacorRouter(design, fault_map=FaultMap()).run()
        assert _canonical(plain) == _canonical(empty)

    def test_mid_flow_cell_fault_is_healed(self):
        design, _, result = _routed()
        victim, cell = _channel_cell(design, result)
        fm = FaultMap(events=[FaultEvent(stage="final", cell=cell)])
        healed = PacorRouter(design, fault_map=fm).run()
        assert not healed.degraded
        verify_result(design, healed)
        report = next(n for n in healed.nets if n.net_id == victim)
        assert report.routed and cell not in report.cells
        assert any(i.kind == "physical-fault" for i in healed.incidents)

    def test_mid_flow_fault_schedule_is_deterministic(self):
        design, _, result = _routed()
        _, cell = _channel_cell(design, result)
        fm_doc = FaultMap(
            events=[FaultEvent(stage="escape", cell=cell)]
        ).to_json()
        runs = [
            PacorRouter(design, fault_map=FaultMap.from_json(fm_doc)).run()
            for _ in range(2)
        ]
        assert _canonical(runs[0]) == _canonical(runs[1])

    def test_initially_stuck_valve_reports_a_dead_net(self):
        design = design_by_name("S1")
        vid = min(v.id for v in design.valves)
        result = PacorRouter(
            design, fault_map=FaultMap(stuck_valves=[vid])
        ).run()
        dead = [n for n in result.nets if not n.routed]
        assert any(
            n.valve_ids == [vid] and "stuck" in (n.failure_reason or "")
            for n in dead
        )
        verify_result(design, result)

    def test_injected_valve_stuck_point_disturbs_the_flow(self):
        design = design_by_name("S1")
        with faults.inject(FaultSpec("valve_stuck", fire_on_calls=(2,))):
            result = PacorRouter(design).run()
        verify_result(design, result)
        assert any(i.kind == "physical-fault" for i in result.incidents)
        # The stuck valve must have been dropped from every routed net.
        routed_valves = {v for n in result.nets if n.routed for v in n.valve_ids}
        assert len(routed_valves) < len(design.valves)

    def test_injected_cell_blockage_point_is_healed(self):
        design = design_by_name("S2")
        with faults.inject(FaultSpec("cell_blockage", fire_on_calls=(3,))):
            result = PacorRouter(design).run()
        verify_result(design, result)
        assert any(i.kind == "physical-fault" for i in result.incidents)

    def test_injected_faults_are_deterministic_per_seed(self):
        design = design_by_name("S1")
        spec = FaultSpec("cell_blockage", probability=0.5, max_fires=2)
        outs = []
        for _ in range(2):
            with faults.inject(spec, seed=7):
                outs.append(_canonical(PacorRouter(design).run()))
        assert outs[0] == outs[1]
