"""Budget: limit validation, each limit kind, and the A* integration."""

import pytest

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded
from repro.routing.astar import astar_route


class FakeClock:
    """Manually advanced monotonic clock for deterministic wall-clock tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_rejects_nonsensical_limits():
    with pytest.raises(ValueError):
        Budget(wall_clock_s=0.0)
    with pytest.raises(ValueError):
        Budget(wall_clock_s=-1.0)
    with pytest.raises(ValueError):
        Budget(astar_expansions=-1)
    with pytest.raises(ValueError):
        Budget(rip_rounds=-5)


def test_unlimited_property():
    assert Budget().unlimited
    assert not Budget(wall_clock_s=1.0).unlimited
    assert not Budget(astar_expansions=10).unlimited
    assert not Budget(rip_rounds=3).unlimited


def test_unlimited_budget_never_trips():
    budget = Budget()
    budget.start()
    for _ in range(1000):
        budget.charge_expansions(1)
    for _ in range(100):
        budget.charge_rip_round()
    budget.check("anywhere")


def test_wall_clock_charges_nothing_before_start():
    clock = FakeClock()
    budget = Budget(wall_clock_s=1.0, clock=clock)
    clock.advance(100.0)
    budget.check_wall_clock("early")  # not started -> never trips
    assert budget.elapsed() == 0.0


def test_wall_clock_trips_with_fake_clock():
    clock = FakeClock()
    budget = Budget(wall_clock_s=2.0, clock=clock)
    budget.start()
    clock.advance(1.5)
    budget.check_wall_clock("mid")
    assert budget.remaining_wall_clock() == pytest.approx(0.5)
    clock.advance(1.0)
    with pytest.raises(BudgetExceeded) as info:
        budget.check_wall_clock("escape")
    assert info.value.kind == "wall-clock"
    assert info.value.stage == "escape"
    assert budget.remaining_wall_clock() == 0.0


def test_expansion_budget_trips_on_charge():
    budget = Budget(astar_expansions=3)
    budget.start()
    for _ in range(3):
        budget.charge_expansions(1)
    with pytest.raises(BudgetExceeded) as info:
        budget.charge_expansions(1)
    assert info.value.kind == "astar-expansions"
    assert info.value.limit == 3
    assert info.value.used == 4


def test_charge_expansions_rechecks_wall_clock_in_batches():
    clock = FakeClock()
    budget = Budget(wall_clock_s=1.0, clock=clock)
    budget.start()
    clock.advance(5.0)  # already over, but only batch boundaries notice
    fired_at = None
    for i in range(1, 200):
        try:
            budget.charge_expansions(1)
        except BudgetExceeded as exc:
            assert exc.kind == "wall-clock"
            fired_at = i
            break
    assert fired_at == 64  # the batched check, not every call


def test_rip_round_budget_trips():
    budget = Budget(rip_rounds=2)
    budget.start()
    budget.charge_rip_round()
    budget.charge_rip_round()
    with pytest.raises(BudgetExceeded) as info:
        budget.charge_rip_round("force-completion")
    assert info.value.kind == "rip-rounds"
    assert info.value.stage == "force-completion"


def test_check_fails_fast_once_spent():
    budget = Budget(astar_expansions=1)
    budget.start()
    budget.charge_expansions(1)
    with pytest.raises(BudgetExceeded):
        budget.charge_expansions(1)
    before = budget.expansions_used
    # check() consumes nothing, and keeps failing for every later stage.
    for stage in ("mst-routing", "escape", "detour"):
        with pytest.raises(BudgetExceeded):
            budget.check(stage)
    assert budget.expansions_used == before


def test_astar_charges_and_raises_through_budget():
    grid = RoutingGrid(20, 20)
    budget = Budget(astar_expansions=5)
    budget.start()
    with pytest.raises(BudgetExceeded):
        astar_route(
            grid, [Point(0, 0)], [Point(19, 19)], budget=budget
        )
    assert budget.expansions_used == 6


def test_astar_without_budget_is_uncapped():
    grid = RoutingGrid(20, 20)
    path = astar_route(grid, [Point(0, 0)], [Point(19, 19)])
    assert path is not None
    assert path.length == 38


def test_astar_max_expansions_still_fails_soft():
    # The per-query safety valve returns None; only the run-wide budget raises.
    grid = RoutingGrid(20, 20)
    path = astar_route(
        grid, [Point(0, 0)], [Point(19, 19)], max_expansions=3
    )
    assert path is None
