"""The structured error taxonomy."""

import pytest

from repro.robustness.errors import (
    BudgetExceeded,
    DesignFormatError,
    OccupancyCorruption,
    PacorError,
    RouterStuck,
    StageFailure,
)


@pytest.mark.parametrize(
    "cls",
    [DesignFormatError, StageFailure, BudgetExceeded, RouterStuck, OccupancyCorruption],
)
def test_taxonomy_roots_at_pacor_error(cls):
    assert issubclass(cls, PacorError)
    assert issubclass(cls, Exception)


def test_design_format_error_is_also_a_value_error():
    # Pre-taxonomy callers catch ValueError; both spellings must work.
    with pytest.raises(ValueError):
        raise DesignFormatError("bad document")
    with pytest.raises(PacorError):
        raise DesignFormatError("bad document")


def test_design_format_error_names_field_and_path():
    err = DesignFormatError("missing required field", field="valves[2].x", path="d.json")
    assert err.field == "valves[2].x"
    assert err.path == "d.json"
    assert "d.json" in str(err)
    assert "valves[2].x" in str(err)


def test_stage_failure_carries_stage_and_net():
    err = StageFailure("negotiation blew up", stage="lm-routing", net_id=7)
    assert err.stage == "lm-routing"
    assert err.net_id == 7
    assert "lm-routing" in str(err) and "net 7" in str(err)


def test_budget_exceeded_reports_kind_and_amounts():
    err = BudgetExceeded(
        "run out of time", kind="wall-clock", limit=2.0, used=2.5, stage="escape"
    )
    assert err.kind == "wall-clock"
    assert err.limit == 2.0 and err.used == 2.5
    assert "wall-clock" in str(err) and "escape" in str(err)


def test_router_stuck_lists_pending_nets():
    err = RouterStuck("no progress", stage="force-completion", pending=[4, 2])
    assert err.pending == (4, 2)
    assert "[2, 4]" in str(err)


def test_occupancy_corruption_lists_cells():
    err = OccupancyCorruption("owner/bucket mismatch", cells=[(3, 4)])
    assert err.cells == ((3, 4),)
    assert "(3, 4)" in str(err)
