"""Shared fixtures for the robustness/chaos suite."""

import pytest

from repro.robustness import faults


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """Guarantee no injector leaks across tests, even on failure."""
    faults.clear()
    yield
    faults.clear()
