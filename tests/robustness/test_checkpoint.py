"""Checkpoint/resume suite: format round-trips and resume fidelity.

Covers the three contracts of ``repro.robustness.checkpoint``:

* the snapshot format round-trips through JSON (and through a file)
  without loss, and malformed documents are rejected with a named field;
* the occupancy export is faithful — even for a corrupted overlay — and
  a snapshot taken after :meth:`Occupancy.repair` restores clean;
* a resumed run continues the flow correctly: resuming from a clean
  stage-boundary snapshot is bit-identical to never stopping, and a
  budget-interrupted run resumed with a fresh budget reaches the
  uninterrupted result.
"""

import json

import pytest

from repro.analysis import verify_result
from repro.core.config import PacorConfig
from repro.core.pacor import PacorRouter
from repro.designs import design_by_name
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import Occupancy
from repro.robustness import faults
from repro.robustness.budget import Budget
from repro.robustness.checkpoint import CHECKPOINT_VERSION, Checkpoint
from repro.robustness.errors import CheckpointFormatError
from repro.robustness.faults import FaultSpec
from repro.robustness.incidents import Incident, Severity


def _canonical(result):
    doc = result.to_json()
    doc["summary"].pop("runtime_s")
    return json.dumps(doc, sort_keys=True)


def _interrupted_run(design_name="S3", expansions=200):
    design = design_by_name(design_name)
    router = PacorRouter(design, budget=Budget(astar_expansions=expansions))
    result = router.run()
    assert result.checkpoint is not None, "budget never tripped"
    return design, router, result


# -- format round-trips -------------------------------------------------------


class TestCheckpointFormat:
    def _any_checkpoint(self):
        design = design_by_name("S1")
        router = PacorRouter(design)
        router.run()
        return router.checkpoints["lm-routing"]

    def test_json_round_trip_is_lossless(self):
        ck = self._any_checkpoint()
        doc = ck.to_json()
        again = Checkpoint.from_json(doc)
        assert again.to_json() == doc
        assert again == ck

    def test_file_round_trip(self, tmp_path):
        ck = self._any_checkpoint()
        path = tmp_path / "ckpt.json"
        ck.save(path)
        assert Checkpoint.load(path) == ck

    def test_document_survives_plain_json_serialisation(self):
        ck = self._any_checkpoint()
        rehydrated = json.loads(json.dumps(ck.to_json()))
        assert Checkpoint.from_json(rehydrated) == ck

    def test_non_dict_rejected(self):
        with pytest.raises(CheckpointFormatError, match="JSON object"):
            Checkpoint.from_json([1, 2, 3])

    def test_missing_field_named(self):
        doc = self._any_checkpoint().to_json()
        doc.pop("occupancy")
        with pytest.raises(CheckpointFormatError, match="occupancy"):
            Checkpoint.from_json(doc)

    def test_unknown_version_rejected(self):
        doc = self._any_checkpoint().to_json()
        doc["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointFormatError, match="version"):
            Checkpoint.from_json(doc)

    def test_load_names_the_file_on_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointFormatError, match="broken.json"):
            Checkpoint.load(path)

    def test_design_name_property(self):
        ck = self._any_checkpoint()
        assert ck.design_name == "S1"


class TestIncidentRoundTrip:
    def test_incident_round_trip(self):
        incident = Incident(
            stage="escape",
            kind="budget-exceeded",
            message="ran out",
            net_id=3,
            severity=Severity.DEGRADED,
        )
        assert Incident.from_json(incident.to_json()) == incident

    def test_config_round_trip(self):
        config = PacorConfig(k_candidates=2, astar_expansion_budget=500)
        again = PacorConfig.from_json(config.to_json())
        assert again.to_json() == config.to_json()

    def test_config_unknown_key_rejected(self):
        doc = PacorConfig().to_json()
        doc["no_such_knob"] = 1
        with pytest.raises(ValueError, match="no_such_knob"):
            PacorConfig.from_json(doc)

    def test_budget_counters_round_trip(self):
        budget = Budget(astar_expansions=100)
        budget.expansions_used = 42
        budget.rip_rounds_used = 3
        fresh = Budget(astar_expansions=100)
        fresh.restore_counters(budget.export_counters())
        assert fresh.expansions_used == 42
        assert fresh.rip_rounds_used == 3


# -- occupancy snapshots ------------------------------------------------------


class TestOccupancySnapshot:
    def _occupancy(self):
        grid = RoutingGrid(8, 8)
        occ = Occupancy(grid)
        occ.occupy([Point(1, 1), Point(1, 2)], 0)
        occ.occupy([Point(5, 5)], 3)
        return grid, occ

    def test_round_trip_preserves_both_views(self):
        grid, occ = self._occupancy()
        restored = Occupancy(grid)
        restored.import_state(occ.export_state())
        assert restored.cells_of(0) == occ.cells_of(0)
        assert restored.cells_of(3) == occ.cells_of(3)
        assert restored.owner(Point(1, 2)) == 0
        assert restored.find_inconsistencies() == []

    def test_off_grid_snapshot_rejected(self):
        grid, occ = self._occupancy()
        state = occ.export_state()
        state["owner_cells"].append([99, 99, 1])
        with pytest.raises(ValueError, match="off-grid"):
            Occupancy(grid).import_state(state)

    def test_corrupted_overlay_exports_faithfully(self):
        # A snapshot must not paper over corruption: restoring a
        # corrupted overlay reproduces the same inconsistency report.
        grid, occ = self._occupancy()
        occ._cells[0].discard(grid.index(Point(1, 1)))  # orphan one owner entry
        bad = occ.find_inconsistencies()
        assert bad == [Point(1, 1)]
        restored = Occupancy(grid)
        restored.import_state(occ.export_state())
        assert restored.find_inconsistencies() == bad

    def test_snapshot_after_repair_restores_clean(self):
        grid, occ = self._occupancy()
        occ._cells[0].discard(grid.index(Point(1, 1)))
        assert occ.repair() == [Point(1, 1)]
        restored = Occupancy(grid)
        restored.import_state(occ.export_state())
        assert restored.find_inconsistencies() == []
        assert restored.cells_of(0) == {Point(1, 1), Point(1, 2)}

    def test_checkpoint_after_chaos_corruption_restores_clean(self):
        # End-to-end: a chaos-injected corruption is repaired by the
        # router's between-stage check; every checkpoint is captured
        # after that check, so restoring any of them yields a consistent
        # overlay.
        design = design_by_name("S1")
        with faults.inject(
            FaultSpec("occupancy_corruption", max_fires=2), seed=3
        ):
            router = PacorRouter(design)
            result = router.run()
        assert any(
            i.kind == "occupancy-corruption" for i in result.incidents
        ), "fault never fired"
        assert router.checkpoints
        for stage, ck in router.checkpoints.items():
            restored = PacorRouter.from_checkpoint(design, ck)
            assert restored.occupancy.find_inconsistencies() == [], stage


# -- resume fidelity ----------------------------------------------------------


class TestResumeFidelity:
    def test_stage_boundary_resume_is_bit_identical(self):
        design = design_by_name("S3")
        router = PacorRouter(design)
        base = _canonical(router.run())
        assert set(router.checkpoints) == {
            "clustering",
            "lm-routing",
            "mst-routing",
            "escape",
        }
        for stage, ck in router.checkpoints.items():
            resumed = PacorRouter.resume(design, ck)
            assert _canonical(resumed) == base, f"diverged from {stage}"

    def test_interrupted_run_resumes_to_uninterrupted_result(self):
        design, _, interrupted = _interrupted_run("S3")
        baseline = design_by_name("S3")
        base = PacorRouter(baseline).run()
        resumed = PacorRouter.resume(
            design, Checkpoint.from_json(interrupted.checkpoint)
        )
        assert verify_result(design, resumed) == []
        row, base_row = resumed.summary_row(), base.summary_row()
        row.pop("runtime_s"), base_row.pop("runtime_s")
        assert row == base_row
        assert resumed.completion_rate == 1.0

    def test_interrupt_reverts_budget_demotions_on_resume(self):
        design, router, interrupted = _interrupted_run("S3")
        ck = Checkpoint.from_json(interrupted.checkpoint)
        assert ck.stage == "lm-routing"
        demoted = [n for n in ck.nets if n["budget_demoted"]]
        assert demoted, "expected budget-forced demotions in the snapshot"
        resumed = PacorRouter.resume(design, ck)
        # The fresh budget lets the reverted clusters match again.
        assert resumed.matched_clusters == 4

    def test_resume_with_design_mismatch_rejected(self):
        _, router, interrupted = _interrupted_run("S3")
        other = design_by_name("S1")
        with pytest.raises(CheckpointFormatError, match="does not match"):
            PacorRouter.resume(
                other, Checkpoint.from_json(interrupted.checkpoint)
            )

    def test_resume_with_unknown_stage_rejected(self):
        design, _, interrupted = _interrupted_run("S3")
        doc = dict(interrupted.checkpoint)
        doc["stage"] = "teleportation"
        with pytest.raises(CheckpointFormatError, match="teleportation"):
            PacorRouter.resume(design, Checkpoint.from_json(doc))

    def test_carry_counters_keeps_cumulative_accounting(self):
        design, _, interrupted = _interrupted_run("S3")
        ck = Checkpoint.from_json(interrupted.checkpoint)
        spent = int(ck.budget["expansions_used"])
        assert spent > 0
        # The same limit with carried counters is already exhausted, so
        # the continuation degrades again instead of spending afresh.
        resumed = PacorRouter.resume(
            design,
            ck,
            budget=Budget(astar_expansions=spent),
            carry_counters=True,
        )
        assert any(
            i.kind == "budget-exceeded"
            for i in resumed.incidents[len(ck.incidents):]
        )

    def test_interrupted_result_checkpoint_excluded_from_json(self):
        _, _, interrupted = _interrupted_run("S3")
        assert interrupted.checkpoint is not None
        assert "checkpoint" not in interrupted.to_json()

    def test_mid_escape_interrupt_records_pending_queue(self):
        design = design_by_name("S3")
        router = PacorRouter(design, budget=Budget(rip_rounds=1))
        result = router.run()
        ck = Checkpoint.from_json(result.checkpoint)
        assert ck.stage == "escape"
        assert ck.pending_escape, "interrupted escape left no pending nets"
        resumed = PacorRouter.resume(design, ck)
        assert verify_result(design, resumed) == []
        assert resumed.completion_rate == 1.0


@pytest.mark.slow
def test_chip1_interrupt_and_resume_completes_and_verifies():
    design, _, interrupted = _interrupted_run("Chip1", expansions=2000)
    assert interrupted.degraded
    resumed = PacorRouter.resume(
        design, Checkpoint.from_json(interrupted.checkpoint)
    )
    assert verify_result(design, resumed) == []
    assert resumed.completion_rate == 1.0
    # The fresh budget recovers matches the interrupted run had to give
    # up when its LM clusters were force-demoted.
    assert resumed.matched_clusters > interrupted.matched_clusters
