"""Chaos suite: the full flow under injected faults.

Acceptance criteria, per named injection point:

* ``run_pacor`` returns a structured (possibly ``degraded``)
  :class:`PacorResult` — no unhandled exception, no hang;
* the routed subset still passes :func:`verify_result`;
* results are bit-identical across repeated runs with the same fault
  seed (compared as ``to_json()`` with the runtime popped).
"""

import pytest

from repro.analysis import verify_result
from repro.core import PacorConfig, run_pacor
from repro.core.pacor import PacorRouter
from repro.designs import design_by_name
from repro.robustness import faults
from repro.robustness.budget import Budget
from repro.robustness.faults import INJECTION_POINTS, FaultSpec


def _canonical(result):
    """Result JSON with the only nondeterministic field (runtime) removed."""
    doc = result.to_json()
    doc["summary"].pop("runtime_s")
    return doc


def _run_under_faults(specs, seed=0, design_name="S1"):
    design = design_by_name(design_name)
    with faults.inject(*specs, seed=seed):
        result = run_pacor(design)
    verify_result(design, result)
    return design, result


@pytest.mark.parametrize("point", INJECTION_POINTS)
def test_every_point_survives_and_verifies(point):
    _, result = _run_under_faults([FaultSpec(point, max_fires=2)])
    assert result.design_name == "S1"
    # A fault that actually disturbed the flow must be visible as an
    # incident or an unrouted net — never silently swallowed.
    if result.degraded:
        assert result.incidents or any(not n.routed for n in result.nets)
    for net in result.nets:
        if not net.routed:
            assert net.failure_reason


@pytest.mark.parametrize("point", INJECTION_POINTS)
def test_bit_identical_across_runs_with_same_seed(point):
    specs = [FaultSpec(point, probability=0.5, max_fires=3)]
    _, first = _run_under_faults(specs, seed=42)
    _, second = _run_under_faults(specs, seed=42)
    assert _canonical(first) == _canonical(second)


def test_all_points_at_once_still_returns_a_result():
    specs = [FaultSpec(p, probability=0.3) for p in INJECTION_POINTS]
    _, result = _run_under_faults(specs, seed=7)
    assert result.summary_row()["design"] == "S1"
    _, again = _run_under_faults(specs, seed=7)
    assert _canonical(result) == _canonical(again)


def test_mcf_solver_crash_falls_back_to_sequential():
    _, result = _run_under_faults([FaultSpec("mcf_solver_raise")])
    kinds = {i.kind for i in result.incidents}
    assert "solver-fallback" in kinds
    # The sequential fallback still routes S1 completely.
    assert all(net.routed for net in result.nets)


def test_candidate_generation_empty_demotes_not_crashes():
    # S2 has a three-valve cluster, the only kind that generates DME
    # candidates (pairs route as a direct edge).
    design, result = _run_under_faults(
        [FaultSpec("candidate_generation_empty")], design_name="S2"
    )
    # The demoted cluster loses its match but the flow still completes.
    trees = [n for n in result.nets if n.length_matching and len(n.valve_ids) >= 3]
    assert trees
    assert not any(net.matched for net in trees)
    assert all(net.routed for net in result.nets)


def test_occupancy_corruption_is_detected_and_repaired():
    _, result = _run_under_faults(
        [FaultSpec("occupancy_corruption", fire_on_calls=(1,))]
    )
    kinds = {i.kind for i in result.incidents}
    assert "occupancy-corruption" in kinds
    assert result.degraded


def test_astar_budget_exhaustion_degrades_gracefully():
    _, result = _run_under_faults(
        [FaultSpec("astar_budget_exhaustion", probability=0.5, max_fires=4)],
        seed=3,
    )
    assert result.design_name == "S1"  # returned, did not raise


def test_healthy_run_is_clean():
    design = design_by_name("S1")
    result = run_pacor(design)
    verify_result(design, result)
    assert not result.degraded
    assert result.incidents == []
    assert all(net.failure_reason is None for net in result.nets)


def test_spent_wall_clock_budget_returns_partial_result():
    # A budget that is over the moment it starts: every stage fails fast,
    # records one budget-exceeded incident, and the run still returns.
    design = design_by_name("S1")
    clock_value = [0.0]

    def clock():
        clock_value[0] += 10.0  # each reading jumps far past the limit
        return clock_value[0]

    router = PacorRouter(
        design, budget=Budget(wall_clock_s=1e-6, clock=clock)
    )
    result = router.run()
    verify_result(design, result)
    assert result.degraded
    assert any(i.kind == "budget-exceeded" for i in result.incidents)
    assert any(not net.routed for net in result.nets)


def test_expansion_budget_via_config_returns_partial_result():
    design = design_by_name("S1")
    config = PacorConfig(astar_expansion_budget=10)
    router = PacorRouter(design, config)
    result = router.run()
    verify_result(design, result)
    assert result.degraded
    assert any(i.kind == "budget-exceeded" for i in result.incidents)
    # Determinism holds for budget-degraded runs too.
    again = PacorRouter(design, PacorConfig(astar_expansion_budget=10)).run()
    assert _canonical(result) == _canonical(again)


def test_rip_round_budget_caps_escape_effort():
    design = design_by_name("S1")
    config = PacorConfig(rip_round_budget=1)
    result = PacorRouter(design, config).run()
    verify_result(design, result)
    assert result.summary_row()["design"] == "S1"


def test_wall_clock_budget_is_respected():
    # Generous budget: the run must finish inside it (S1 routes in
    # milliseconds) and come out clean.
    design = design_by_name("S1")
    budget = Budget(wall_clock_s=60.0)
    router = PacorRouter(design, budget=budget)
    result = router.run()
    assert budget.elapsed() < 60.0
    assert not result.degraded
