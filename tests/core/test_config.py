"""Tests for PacorConfig validation and defaults."""

import pytest

from repro.core import DetourStage, PacorConfig, SelectionSolver


def test_defaults_match_paper():
    config = PacorConfig()
    assert config.lam == 0.1
    assert config.history_base == 1.0
    assert config.history_alpha == 0.1
    assert config.gamma == 10
    assert config.theta == 10
    assert config.enable_selection
    assert config.detour_stage is DetourStage.FINAL
    assert config.selection_solver is SelectionSolver.EXACT


def test_delta_none_uses_design_delta():
    config = PacorConfig()
    assert config.resolved_delta(3) == 3
    config = PacorConfig(delta=0)
    assert config.resolved_delta(3) == 0


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        PacorConfig(delta=-1)
    with pytest.raises(ValueError):
        PacorConfig(lam=1.5)
    with pytest.raises(ValueError):
        PacorConfig(gamma=0)
    with pytest.raises(ValueError):
        PacorConfig(theta=0)
    with pytest.raises(ValueError):
        PacorConfig(k_candidates=0)
    with pytest.raises(ValueError):
        PacorConfig(max_ripup_rounds=-1)


def test_string_enums_coerced():
    config = PacorConfig(selection_solver="greedy", detour_stage="none")
    assert config.selection_solver is SelectionSolver.GREEDY
    assert config.detour_stage is DetourStage.NONE


def test_unknown_enum_rejected():
    with pytest.raises(ValueError):
        PacorConfig(selection_solver="simplex")
