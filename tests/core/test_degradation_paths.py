"""Unit tests for PacorRouter's degradation paths.

Covers the recovery machinery directly: candidate retry after a
negotiation failure, LM demotion, and the force-completion "walled in"
branch that gives a net up instead of looping.
"""

from repro.core.config import PacorConfig
from repro.core.pacor import PacorRouter
from repro.designs import Design
from repro.dme import generate_candidates
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.robustness.budget import Budget
from repro.valves import ActivationSequence, Valve


def make_lm_router(budget=None):
    """A 14x14 design with one 3-valve LM cluster, clustered but unrouted."""
    grid = RoutingGrid(14, 14)
    valves = [
        Valve(0, Point(3, 7), ActivationSequence("00")),
        Valve(1, Point(9, 7), ActivationSequence("00")),
        Valve(2, Point(6, 3), ActivationSequence("00")),
    ]
    design = Design(
        "deg",
        grid,
        valves,
        lm_groups=[[0, 1, 2]],
        control_pins=[Point(0, 0), Point(13, 0), Point(0, 13), Point(13, 13)],
    )
    router = PacorRouter(design, PacorConfig(), budget=budget)
    router._stage_clustering()
    router.budget.start()
    return router


def lm_candidates(router, net):
    blocked = {v.position for v in router.design.valves}
    return generate_candidates(
        router.grid,
        net.net_id,
        [v.position for v in net.valves],
        k=4,
        blocked=blocked,
    )


def test_retry_candidates_routes_an_alternative():
    router = make_lm_router()
    net = router.nets[0]
    cands = lm_candidates(router, net)
    assert len(cands) >= 2
    assert router._retry_candidates(net, cands, cands[0]) is True
    assert net.tree is not None
    assert not net.demoted
    # The routed tree occupies more than the bare valve cells.
    valve_cells = {v.position for v in net.valves}
    assert router.occupancy.cells_of(0) > valve_cells


def test_retry_candidates_fails_without_alternatives():
    router = make_lm_router()
    net = router.nets[0]
    cands = lm_candidates(router, net)
    # Only the already-failed tree available -> nothing to retry.
    assert router._retry_candidates(net, [cands[0]], cands[0]) is False
    assert net.tree is None
    # Everything but the valve terminals was released.
    valve_cells = {v.position for v in net.valves}
    assert router.occupancy.cells_of(0) == valve_cells


def test_retry_candidates_stops_on_spent_budget():
    router = make_lm_router(budget=Budget(astar_expansions=0))
    net = router.nets[0]
    cands = lm_candidates(router, net)
    assert len(cands) >= 2
    assert router._retry_candidates(net, cands, cands[0]) is False
    assert net.tree is None


def test_demote_lm_releases_all_but_valve_cells():
    router = make_lm_router()
    net = router.nets[0]
    cands = lm_candidates(router, net)
    assert router._retry_candidates(net, cands, cands[0])
    router._demote_lm(net, reason="test")
    assert net.demoted
    assert net.tree is None and net.paths == []
    assert net.kind == "ordinary"
    valve_cells = {v.position for v in net.valves}
    assert router.occupancy.cells_of(0) == valve_cells


def test_demote_singleton_becomes_singleton_kind():
    router = make_lm_router()
    net = router.nets[0]
    net.valves = net.valves[:1]
    router._demote_lm(net, reason="test")
    assert net.kind == "singleton"


def make_walled_in_router():
    """A singleton valve inside a closed obstacle pocket: no pin reachable."""
    grid = RoutingGrid(12, 12)
    ring = [
        Point(x, y)
        for x in range(3, 8)
        for y in range(3, 8)
        if x in (3, 7) or y in (3, 7)
    ]
    grid.add_obstacles(ring)
    valves = [Valve(0, Point(5, 5), ActivationSequence("00"))]
    design = Design(
        "walled",
        grid,
        valves,
        lm_groups=[],
        control_pins=[Point(0, 0), Point(11, 11)],
    )
    router = PacorRouter(design, PacorConfig())
    router._stage_clustering()
    router.budget.start()
    return router


def test_force_completion_gives_up_on_walled_in_net():
    router = make_walled_in_router()
    pending = {0}
    router._force_completion(pending, list(router.design.control_pins))
    # The net is hopeless: reported, reasoned, and still pending.
    assert pending == {0}
    assert not router.nets[0].routed
    assert any(
        i.kind == "net-failure" and i.net_id == 0 for i in router.incidents
    )
    assert "walled in" in router._failure_reasons[0]


def test_walled_in_net_yields_degraded_result_end_to_end():
    router = make_walled_in_router()
    router._stage_mst_routing()
    router._stage_escape()
    result = router._collect(runtime=0.0)
    assert result.degraded
    report = result.nets[0]
    assert not report.routed
    assert report.failure_reason and "walled in" in report.failure_reason
