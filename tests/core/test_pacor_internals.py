"""Unit tests for PacorRouter's internal stages."""

import pytest

from repro.core.config import PacorConfig
from repro.core.pacor import PacorRouter
from repro.designs import Design, generate_design
from repro.designs.generator import ClusterPlan
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.valves import ActivationSequence, Valve


def tiny_design():
    grid = RoutingGrid(16, 16)
    valves = [
        Valve(0, Point(3, 8), ActivationSequence("00")),
        Valve(1, Point(9, 8), ActivationSequence("00")),
        Valve(2, Point(6, 3), ActivationSequence("11")),
    ]
    return Design(
        name="tiny",
        grid=grid,
        valves=valves,
        lm_groups=[[0, 1]],
        control_pins=[Point(0, 0), Point(15, 0), Point(0, 15), Point(15, 15)],
    )


class TestClusteringStage:
    def test_valve_cells_occupied_by_their_nets(self):
        router = PacorRouter(tiny_design())
        clusters = router._stage_clustering()
        assert len(clusters) == 2
        for cluster in clusters:
            for valve in cluster.valves:
                assert router.occupancy.owner(valve.position) == cluster.id

    def test_net_kinds(self):
        router = PacorRouter(tiny_design())
        router._stage_clustering()
        kinds = sorted(n.kind for n in router.nets.values())
        assert kinds == ["lm-pair", "singleton"]


class TestLmRouting:
    def test_pair_routed_as_tree(self):
        router = PacorRouter(tiny_design())
        clusters = router._stage_clustering()
        router._stage_lm_routing()
        pair = next(n for n in router.nets.values() if n.kind == "lm-pair")
        assert pair.tree is not None
        assert pair.tree.mismatch() <= 1
        # The routed channel covers both valves.
        cells = router.occupancy.cells_of(pair.net_id)
        assert Point(3, 8) in cells and Point(9, 8) in cells

    def test_demote_releases_channels_keeps_valves(self):
        router = PacorRouter(tiny_design())
        clusters = router._stage_clustering()
        router._stage_lm_routing()
        pair = next(n for n in router.nets.values() if n.tree is not None)
        before = router.occupancy.cells_of(pair.net_id)
        assert len(before) > 2
        router._demote_lm(pair, reason="test")
        after = router.occupancy.cells_of(pair.net_id)
        assert after == {Point(3, 8), Point(9, 8)}
        assert pair.tree is None
        assert pair.demoted
        assert pair.kind == "ordinary"


class TestEscapeTaps:
    def test_tree_net_taps_at_root(self):
        router = PacorRouter(tiny_design())
        clusters = router._stage_clustering()
        router._stage_lm_routing()
        pair = next(n for n in router.nets.values() if n.tree is not None)
        assert router._escape_taps(pair) == (pair.tree.root,)

    def test_singleton_taps_at_valve(self):
        router = PacorRouter(tiny_design())
        router._stage_clustering()
        single = next(n for n in router.nets.values() if n.kind == "singleton")
        assert router._escape_taps(single) == (Point(6, 3),)

    def test_ordinary_taps_are_all_cells(self):
        router = PacorRouter(tiny_design())
        clusters = router._stage_clustering()
        router._stage_lm_routing()
        pair = next(n for n in router.nets.values() if n.tree is not None)
        router._demote_lm(pair, reason="test")
        router._stage_mst_routing()
        taps = router._escape_taps(pair)
        assert set(taps) == router.occupancy.cells_of(pair.net_id)
        assert len(taps) > 2


class TestSpawnSingleton:
    def test_ownership_transferred(self):
        router = PacorRouter(tiny_design())
        router._stage_clustering()
        parent = next(n for n in router.nets.values() if n.kind == "lm-pair")
        valve = parent.valves[1]
        router._spawn_singleton(parent, valve)
        new = router.nets[max(router.nets)]
        assert new.valves == [valve]
        assert new.origin_cluster == parent.origin_cluster
        assert router.occupancy.owner(valve.position) == new.net_id

    def test_joins_escape_pending_when_active(self):
        router = PacorRouter(tiny_design())
        router._stage_clustering()
        parent = next(n for n in router.nets.values() if n.kind == "lm-pair")
        pending = set()
        router._escape_pending = pending
        router._spawn_singleton(parent, parent.valves[1])
        assert max(router.nets) in pending


class TestFullRunBookkeeping:
    def test_every_valve_in_exactly_one_net(self):
        design = generate_design(
            "bk",
            30,
            30,
            clusters=[ClusterPlan(3), ClusterPlan(2)],
            n_singletons=3,
            n_pins=20,
            n_obstacles=10,
            seed=13,
        )
        result = PacorRouter(design).run()
        seen = sorted(v for n in result.nets for v in n.valve_ids)
        assert seen == sorted(v.id for v in design.valves)

    def test_occupancy_matches_reported_cells(self):
        design = tiny_design()
        router = PacorRouter(design)
        result = router.run()
        for net in result.nets:
            assert net.cells == frozenset(router.occupancy.cells_of(net.net_id))

    def test_method_name_recorded(self):
        router = PacorRouter(tiny_design())
        router._method_name = "custom"
        assert router.run().method == "custom"
