"""End-to-end multi-layer routing: forced vias, weighted lengths, export.

The forcing design is a two-layer chip whose layer 0 is split by a
full-height obstacle wall; the only valve sits on one side and every
control pin on the other, so the solved route *must* climb to layer 1,
cross over the wall and come back down — two via segments, guaranteed.
"""

import pytest

from repro.core import PacorConfig, run_pacor
from repro.core.result import is_via_segment
from repro.designs import Design
from repro.geometry import Point
from repro.geometry.point import cell_point
from repro.grid import RoutingGrid
from repro.observability import Metrics, use
from repro.valves import ActivationSequence, Valve


def wall_design(via_cost: int = 1, via_length: int = 1) -> Design:
    grid = RoutingGrid(
        15, 7, 2, via_cost=via_cost, via_length=via_length
    )
    grid.add_obstacles(Point(7, y) for y in range(7))
    design = Design(
        name="over-the-wall",
        grid=grid,
        valves=[Valve(0, Point(2, 3), ActivationSequence("01"))],
        control_pins=[Point(12, 3)],
    )
    design.validate()
    return design


class TestForcedVias:
    def test_route_crosses_the_wall_through_layer_one(self):
        result = run_pacor(wall_design(), PacorConfig())
        assert result.completion_rate == 1.0
        net = next(n for n in result.nets if n.routed)
        vias = [s for s in net.segments if is_via_segment(s)]
        assert len(vias) >= 2
        assert any(len(c) == 3 for c in net.cells)
        # The wall cells themselves stay clear on layer 0.
        assert Point(7, 3) not in net.cells
        assert cell_point(7, 3, 1) in net.cells

    def test_via_counters_emitted(self):
        metrics = Metrics()
        with use(metrics=metrics):
            result = run_pacor(wall_design(), PacorConfig())
        assert result.completion_rate == 1.0
        counters = metrics.counter_values()
        assert counters["via.segments"] >= 2
        assert counters["via.nets"] == 1

    def test_via_length_weights_channel_length(self):
        plain = run_pacor(wall_design(via_length=1), PacorConfig())
        weighted = run_pacor(wall_design(via_length=3), PacorConfig())
        net_p = next(n for n in plain.nets if n.routed)
        net_w = next(n for n in weighted.nets if n.routed)
        vias_p = sum(1 for s in net_p.segments if is_via_segment(s))
        vias_w = sum(1 for s in net_w.segments if is_via_segment(s))
        assert net_p.channel_length == len(net_p.segments)
        assert net_w.channel_length == len(net_w.segments) + vias_w * 2
        assert vias_p >= 2 and vias_w >= 2

    def test_json_export_carries_layered_cells(self):
        result = run_pacor(wall_design(), PacorConfig())
        doc = result.to_json()
        net = next(n for n in doc["nets"] if n["routed"])
        arities = {len(c) for c in net["cells"]}
        assert arities == {2, 3}
        via_segs = [
            (a, b)
            for a, b in net["segments"]
            if (a[2] if len(a) == 3 else 0) != (b[2] if len(b) == 3 else 0)
        ]
        assert len(via_segs) >= 2

    def test_via_cost_steers_away_from_vias(self):
        # With a second route available on layer 0, a steep via cost
        # must keep the solution planar.
        grid = RoutingGrid(15, 7, 2, via_cost=50)
        grid.add_obstacles(Point(7, y) for y in range(6))  # gap at y=6
        design = Design(
            name="door-at-the-bottom",
            grid=grid,
            valves=[Valve(0, Point(2, 3), ActivationSequence("01"))],
            control_pins=[Point(12, 3)],
        )
        design.validate()
        result = run_pacor(design, PacorConfig())
        assert result.completion_rate == 1.0
        net = next(n for n in result.nets if n.routed)
        assert not any(is_via_segment(s) for s in net.segments)
