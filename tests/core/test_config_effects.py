"""Tests for less-travelled PacorConfig switches."""

import pytest

from repro import PacorConfig, PacorRouter, run_pacor
from repro.analysis import verify_result
from repro.designs import ClusterPlan, generate_design
from repro.geometry import Point


def make_design(seed=21):
    return generate_design(
        "cfg",
        34,
        34,
        clusters=[ClusterPlan(3), ClusterPlan(2)],
        n_singletons=2,
        n_pins=24,
        n_obstacles=12,
        seed=seed,
    )


class TestMatchAllClusters:
    def test_disabled_only_declared_groups_match(self):
        # Two compatible singletons will be clustered together; with
        # match_all_clusters=False that pair is ordinary (never matched).
        from repro.designs import Design
        from repro.grid import RoutingGrid
        from repro.valves import ActivationSequence, Valve

        grid = RoutingGrid(20, 20)
        valves = [
            Valve(0, Point(4, 10), ActivationSequence("00")),
            Valve(1, Point(9, 10), ActivationSequence("00")),
            Valve(2, Point(14, 10), ActivationSequence("11")),
        ]
        design = Design(
            "pairless", grid, valves, lm_groups=[],
            control_pins=[Point(0, 0), Point(19, 0), Point(0, 19)],
        )
        strict = PacorRouter(
            design, PacorConfig(match_all_clusters=False)
        ).run()
        assert strict.matched_clusters == 0
        assert all(n.matched is None for n in strict.nets)
        default = PacorRouter(design, PacorConfig()).run()
        assert default.n_lm_clusters == 1
        assert default.matched_clusters == 1

    def test_declared_groups_always_lm(self):
        design = make_design()
        result = run_pacor(design, PacorConfig(match_all_clusters=False))
        lm_nets = [n for n in result.nets if n.length_matching]
        declared = {frozenset(g) for g in design.lm_groups}
        covered = {frozenset(n.valve_ids) for n in lm_nets}
        assert covered <= declared | {
            frozenset(g) for n in lm_nets for g in [n.valve_ids]
        }
        assert len(lm_nets) >= len(design.lm_groups) - 1  # de-clustering slack


class TestBoundedSkewFlow:
    def test_end_to_end_verifies(self):
        design = make_design()
        result = run_pacor(design, PacorConfig(bounded_skew_dme=True))
        assert result.completion_rate == 1.0
        verify_result(design, result)

    def test_matched_quality_comparable(self):
        design = make_design()
        zero = run_pacor(design)
        bounded = run_pacor(design, PacorConfig(bounded_skew_dme=True))
        assert bounded.matched_clusters >= zero.matched_clusters - 1


class TestRipupBudget:
    def test_zero_ripup_rounds_still_completes_easy_designs(self):
        design = make_design()
        result = run_pacor(design, PacorConfig(max_ripup_rounds=0))
        verify_result(design, result)
        assert result.completion_rate == 1.0

    def test_gamma_one_disables_negotiation_iterations(self):
        design = make_design()
        result = run_pacor(design, PacorConfig(gamma=1))
        verify_result(design, result)
        assert result.completion_rate == 1.0


class TestDeltaOverride:
    def test_generous_delta_matches_without_detours(self):
        design = make_design()
        result = run_pacor(design, PacorConfig(delta=50))
        assert result.matched_clusters == result.n_lm_clusters
        assert not any("detour" in e for e in result.events)

    def test_delta_recorded_in_result(self):
        design = make_design()
        assert run_pacor(design, PacorConfig(delta=3)).delta == 3
        assert run_pacor(design).delta == design.delta
