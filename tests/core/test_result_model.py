"""Tests for NetReport/PacorResult metrics (Table-2 aggregates)."""

import pytest

from repro.core.result import NetReport, PacorResult, segments_of_path
from repro.geometry import Point


def report(net_id, origin, valves, lm, routed, matched=None, length=0, pin=None):
    return NetReport(
        net_id=net_id,
        origin_cluster=origin,
        valve_ids=valves,
        length_matching=lm,
        routed=routed,
        matched=matched,
        channel_length=length,
        pin=pin,
    )


def make_result(nets, n_valves=6, n_lm=2):
    return PacorResult(
        design_name="T",
        method="PACOR",
        delta=1,
        n_valves=n_valves,
        n_lm_clusters=n_lm,
        nets=nets,
    )


def test_segments_of_path_normalised():
    segs = segments_of_path([Point(1, 0), Point(0, 0), Point(0, 1)])
    assert segs == [(Point(0, 0), Point(1, 0)), (Point(0, 0), Point(0, 1))]


def test_matched_clusters_counts_only_intact_matched():
    nets = [
        report(0, 0, [0, 1], True, True, matched=True, length=10),
        report(1, 1, [2, 3], True, True, matched=False, length=8),
        report(2, 2, [4], False, True, length=3),
    ]
    result = make_result(nets)
    assert result.matched_clusters == 1
    assert result.total_matched_length == 10
    assert result.total_length == 21


def test_declustered_lm_cluster_never_matched():
    # Origin cluster 0 split into two nets: cannot count as matched.
    nets = [
        report(0, 0, [0], True, True, matched=None, length=4),
        report(5, 0, [1], True, True, matched=None, length=4),
    ]
    result = make_result(nets, n_valves=2, n_lm=1)
    assert result.matched_clusters == 0


def test_completion_rate():
    nets = [
        report(0, 0, [0, 1], True, True, matched=True, length=9),
        report(1, 1, [2], False, False),
    ]
    result = make_result(nets, n_valves=3)
    assert result.routed_valves == 2
    assert result.completion_rate == pytest.approx(2 / 3)


def test_completion_rate_empty_design():
    result = make_result([], n_valves=0)
    assert result.completion_rate == 1.0


def test_unrouted_net_contributes_no_length():
    nets = [report(0, 0, [0, 1], True, False, matched=False, length=0)]
    result = make_result(nets)
    assert result.total_length == 0


def test_pins_used():
    nets = [
        report(0, 0, [0], False, True, length=2, pin=Point(0, 0)),
        report(1, 1, [1], False, False),
    ]
    result = make_result(nets, n_valves=2)
    assert result.pins_used == 1


def test_summary_row_keys():
    result = make_result([])
    row = result.summary_row()
    assert set(row) == {
        "design",
        "method",
        "n_clusters",
        "matched_clusters",
        "total_matched_length",
        "total_length",
        "completion",
        "runtime_s",
    }


def test_lm_cluster_count():
    nets = [
        report(0, 0, [0, 1], True, True, matched=True),
        report(1, 1, [2, 3], True, True, matched=True),
        report(2, 2, [4], False, True),
    ]
    assert make_result(nets).lm_cluster_count() == 2


def test_to_json_roundtrips_through_json_module():
    import json

    from repro import run_pacor, s1

    result = run_pacor(s1())
    doc = json.loads(json.dumps(result.to_json()))
    assert doc["summary"]["matched_clusters"] == result.matched_clusters
    assert doc["delta"] == result.delta
    net_doc = doc["nets"][0]
    assert set(net_doc) >= {"net_id", "cells", "segments", "routed", "pin"}
