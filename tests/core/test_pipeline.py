"""End-to-end integration tests of the PACOR flow (Fig. 2)."""

import pytest

from repro import (
    PacorConfig,
    PacorRouter,
    design_by_name,
    generate_design,
    run_detour_first,
    run_method,
    run_pacor,
    run_without_selection,
)
from repro.analysis import verify_result
from repro.core import METHODS
from repro.designs import ClusterPlan


@pytest.fixture(scope="module")
def s1_design():
    return design_by_name("S1")


@pytest.fixture(scope="module")
def s3_design():
    return design_by_name("S3")


class TestPacorOnSuite:
    def test_s1_full_completion_and_matching(self, s1_design):
        result = run_pacor(s1_design)
        assert result.completion_rate == 1.0
        assert result.matched_clusters == result.n_lm_clusters == 2
        verify_result(s1_design, result)

    def test_s3_full_completion(self, s3_design):
        result = run_pacor(s3_design)
        assert result.completion_rate == 1.0
        assert result.matched_clusters >= 4
        verify_result(s3_design, result)

    def test_every_routed_net_has_distinct_pin(self, s3_design):
        result = run_pacor(s3_design)
        pins = [n.pin for n in result.nets if n.routed]
        assert len(pins) == len(set(pins))

    def test_method_names(self, s1_design):
        assert run_pacor(s1_design).method == "PACOR"
        assert run_without_selection(s1_design).method == "w/o Sel"
        assert run_detour_first(s1_design).method == "Detour First"

    def test_run_method_dispatch(self, s1_design):
        for name in METHODS:
            result = run_method(s1_design, name)
            assert result.method == name

    def test_run_method_unknown(self, s1_design):
        with pytest.raises(ValueError):
            run_method(s1_design, "Gurobi")

    def test_determinism(self, s3_design):
        a = run_pacor(design_by_name("S3"))
        b = run_pacor(design_by_name("S3"))
        assert a.total_length == b.total_length
        assert a.matched_clusters == b.matched_clusters
        assert [n.pin for n in a.nets] == [n.pin for n in b.nets]

    def test_events_logged(self, s1_design):
        result = run_pacor(s1_design)
        assert any("clustering" in e for e in result.events)
        assert any("escape" in e for e in result.events)


class TestPacorConfigEffects:
    def test_selection_disabled_in_baseline(self, s3_design):
        result = run_without_selection(s3_design)
        assert any("selection: disabled" in e for e in result.events)

    def test_selection_enabled_in_pacor(self, s3_design):
        result = run_pacor(s3_design)
        assert any("selection: exact" in e for e in result.events)

    def test_alternative_selection_solvers(self, s3_design):
        for solver in ("greedy", "local"):
            result = run_pacor(
                s3_design, PacorConfig(selection_solver=solver)
            )
            assert result.completion_rate == 1.0

    def test_detour_none_may_reduce_matching(self, s3_design):
        result = PacorRouter(
            s3_design, PacorConfig(detour_stage="none")
        ).run()
        full = run_pacor(s3_design)
        assert result.matched_clusters <= full.matched_clusters

    def test_delta_zero_is_harder(self, s3_design):
        strict = run_pacor(s3_design, PacorConfig(delta=0))
        loose = run_pacor(s3_design, PacorConfig(delta=5))
        assert strict.matched_clusters <= loose.matched_clusters

    def test_k_candidates_one_still_routes(self, s3_design):
        result = run_pacor(s3_design, PacorConfig(k_candidates=1))
        assert result.completion_rate == 1.0


class TestSmallCustomDesigns:
    def test_design_without_lm_groups(self):
        design = generate_design(
            "nolm",
            20,
            20,
            clusters=[],
            n_singletons=4,
            n_pins=12,
            n_obstacles=5,
            seed=3,
        )
        result = run_pacor(design)
        assert result.n_lm_clusters == 0
        assert result.matched_clusters == 0
        assert result.completion_rate == 1.0
        verify_result(design, result)

    def test_single_large_cluster(self):
        design = generate_design(
            "big",
            40,
            40,
            clusters=[ClusterPlan(6)],
            n_singletons=0,
            n_pins=20,
            n_obstacles=0,
            seed=5,
        )
        result = run_pacor(design)
        assert result.completion_rate == 1.0
        verify_result(design, result)
        net = result.nets[0]
        assert net.routed
        if net.matched:
            assert net.mismatch <= design.delta

    def test_crowded_design_verifies(self):
        design = generate_design(
            "crowded",
            30,
            30,
            clusters=[ClusterPlan(2)] * 4,
            n_singletons=3,
            n_pins=24,
            n_obstacles=40,
            seed=9,
        )
        result = run_pacor(design)
        verify_result(design, result)
        assert result.completion_rate == 1.0

    def test_sink_lengths_within_delta_for_matched(self):
        design = design_by_name("S4")
        result = run_pacor(design)
        for net in result.nets:
            if net.matched:
                values = list(net.sink_lengths.values())
                assert max(values) - min(values) <= result.delta
