"""Unit tests for escape-stage bookkeeping in PacorRouter."""

import pytest

from repro.core.config import PacorConfig
from repro.core.pacor import PacorRouter
from repro.designs import Design
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.routing import Path, astar_route
from repro.valves import ActivationSequence, Valve


def make_router():
    grid = RoutingGrid(14, 14)
    valves = [
        Valve(0, Point(3, 7), ActivationSequence("00")),
        Valve(1, Point(9, 7), ActivationSequence("00")),
        Valve(2, Point(6, 3), ActivationSequence("11")),
    ]
    design = Design(
        "esc",
        grid,
        valves,
        lm_groups=[[0, 1]],
        control_pins=[Point(0, 0), Point(13, 0), Point(0, 13), Point(13, 13)],
    )
    router = PacorRouter(design, PacorConfig())
    clusters = router._stage_clustering()
    router._stage_lm_routing()
    return router


def test_commit_escape_claims_new_cells_only():
    router = make_router()
    net = router.nets[0]
    root = net.tree.root
    before = set(router.occupancy.cells_of(0))
    # A legal escape path: root to any pin, avoiding other nets.
    path = astar_route(
        router.grid,
        [root],
        router.design.control_pins,
        net=0,
        occupancy=router.occupancy,
    )
    assert path is not None
    router._commit_escape(net, path, path.target)
    after = set(router.occupancy.cells_of(0))
    assert net.routed and net.pin == path.target
    assert net.tree.escape_path == path
    assert after == before | set(path.cells)


def test_uncommit_escape_restores_internal_cells():
    router = make_router()
    net = router.nets[0]
    internal = set(router.occupancy.cells_of(0))
    path = astar_route(
        router.grid,
        [net.tree.root],
        router.design.control_pins,
        net=0,
        occupancy=router.occupancy,
    )
    assert path is not None
    router._commit_escape(net, path, path.target)
    pending = set()
    router._uncommit_escape(net, pending)
    assert not net.routed and net.pin is None
    assert net.tree.escape_path is None
    assert set(router.occupancy.cells_of(0)) == internal
    assert pending == {0}


def test_full_escape_stage_routes_everything():
    router = make_router()
    router._stage_mst_routing()
    router._stage_escape()
    assert all(n.routed for n in router.nets.values())
    pins = [n.pin for n in router.nets.values()]
    assert len(pins) == len(set(pins))


def test_escape_taps_match_kinds():
    router = make_router()
    for net in router.nets.values():
        taps = router._escape_taps(net)
        if net.tree is not None:
            assert taps == (net.tree.root,)
        else:
            assert set(taps) == router.occupancy.cells_of(net.net_id)
