"""Tests for the flow-layer model and its control-layer projection."""

import pytest

from repro.flowlayer import (
    FlowChannel,
    FlowLayer,
    control_obstacles,
    multiplexer_tree,
    rotary_ring,
    straight_channel,
)
from repro.geometry import Point
from repro.grid import RoutingGrid


class TestFlowChannel:
    def test_requires_cells(self):
        with pytest.raises(ValueError, match="no cells"):
            FlowChannel("c", [])

    def test_adjacency_validated(self):
        with pytest.raises(ValueError, match="not adjacent"):
            FlowChannel("c", [Point(0, 0), Point(2, 0)])

    def test_closed_loop_validated(self):
        with pytest.raises(ValueError, match="does not loop"):
            FlowChannel("c", [Point(0, 0), Point(1, 0), Point(2, 0)], closed=True)

    def test_accepts_tuples(self):
        c = FlowChannel("c", [(0, 0), (1, 0)])
        assert c.cells[0] == Point(0, 0)


class TestFlowLayer:
    def test_duplicate_names_rejected(self):
        layer = FlowLayer()
        layer.add(FlowChannel("a", [Point(0, 0)]))
        with pytest.raises(ValueError, match="duplicate"):
            layer.add(FlowChannel("a", [Point(5, 5)]))

    def test_valve_site_must_be_on_channel(self):
        layer = FlowLayer()
        layer.add(FlowChannel("a", [Point(0, 0), Point(1, 0)]))
        layer.add_valve_site(Point(1, 0))
        with pytest.raises(ValueError, match="not on any"):
            layer.add_valve_site(Point(5, 5))

    def test_validate_against_grid(self):
        layer = FlowLayer()
        layer.add(FlowChannel("a", [Point(8, 8), Point(9, 8), Point(10, 8)]))
        with pytest.raises(ValueError, match="leaves the chip"):
            layer.validate(RoutingGrid(10, 10))

    def test_control_obstacles_exclude_valve_sites(self):
        layer = FlowLayer()
        layer.add(FlowChannel("a", [Point(0, 0), Point(1, 0), Point(2, 0)]))
        layer.add_valve_site(Point(1, 0))
        obstacles = control_obstacles(layer)
        assert obstacles == {Point(0, 0), Point(2, 0)}


class TestGeometry:
    def test_straight_channel_l_shape(self):
        c = straight_channel("c", Point(0, 0), Point(3, 2))
        assert c.cells[0] == Point(0, 0)
        assert c.cells[-1] == Point(3, 2)
        # 4 horizontal + 2 vertical cells.
        assert len(c.cells) == 6

    def test_straight_channel_horizontal_only(self):
        c = straight_channel("c", Point(2, 5), Point(6, 5))
        assert len(c.cells) == 5
        assert all(p.y == 5 for p in c.cells)

    def test_straight_channel_reverse_direction(self):
        c = straight_channel("c", Point(6, 5), Point(2, 3))
        assert c.cells[0] == Point(6, 5)
        assert c.cells[-1] == Point(2, 3)

    def test_rotary_ring_is_closed_loop(self):
        ring = rotary_ring("r", Point(5, 5), 4)
        assert ring.closed
        assert len(ring.cells) == 12  # perimeter of 4x4 = 4*4 - 4
        assert len(set(ring.cells)) == len(ring.cells)

    def test_rotary_ring_minimum_size(self):
        with pytest.raises(ValueError):
            rotary_ring("r", Point(0, 0), 2)

    def test_multiplexer_tree_structure(self):
        channels = multiplexer_tree("m", Point(5, 10), 4, pitch=2)
        assert len(channels) == 5  # trunk + 4 leaves
        names = {c.name for c in channels}
        assert "m.trunk" in names
        assert "m.leaf3" in names
        trunk = channels[0]
        assert len(trunk.cells) == 7  # (4-1)*2 + 1

    def test_multiplexer_needs_two_leaves(self):
        with pytest.raises(ValueError):
            multiplexer_tree("m", Point(0, 0), 1)


class TestIntegrationWithRouting:
    def test_flow_obstacles_route_around(self):
        """Control channels avoid flow channels except at valve sites."""
        from repro import run_pacor
        from repro.analysis import verify_result
        from repro.designs import Design
        from repro.valves import ActivationSequence, Valve

        grid = RoutingGrid(20, 20)
        layer = FlowLayer()
        ring = layer.add(rotary_ring("mix", Point(7, 7), 6))
        # Two valve sites on the ring: a length-matched pair.
        site_a, site_b = ring.cells[0], ring.cells[6]
        layer.add_valve_site(site_a)
        layer.add_valve_site(site_b)
        layer.validate(grid)
        grid.add_obstacles(control_obstacles(layer))

        valves = [
            Valve(0, site_a, ActivationSequence("01")),
            Valve(1, site_b, ActivationSequence("01")),
        ]
        design = Design(
            name="flowdemo",
            grid=grid,
            valves=valves,
            lm_groups=[[0, 1]],
            control_pins=[p for p in grid.boundary_cells()][::6],
        )
        design.validate()
        result = run_pacor(design)
        assert result.completion_rate == 1.0
        verify_result(design, result)
        # No control cell sits on a flow cell other than the valve sites.
        flow_cells = layer.all_cells() - layer.valve_sites
        for net in result.nets:
            assert not net.cells & flow_cells
