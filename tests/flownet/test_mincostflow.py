"""Tests for the successive-shortest-paths min-cost max-flow solver."""

import networkx as nx
import pytest

from repro.flownet import MinCostFlow


def test_node_count_validated():
    with pytest.raises(ValueError):
        MinCostFlow(0)


def test_arc_validation():
    net = MinCostFlow(2)
    with pytest.raises(ValueError):
        net.add_arc(0, 5, 1, 0.0)
    with pytest.raises(ValueError):
        net.add_arc(0, 1, -1, 0.0)
    with pytest.raises(ValueError):
        net.add_arc(0, 1, 1, -2.0)


def test_source_equals_sink_rejected():
    net = MinCostFlow(2)
    with pytest.raises(ValueError):
        net.max_flow_min_cost(0, 0)


def test_single_arc():
    net = MinCostFlow(2)
    a = net.add_arc(0, 1, 3, 2.0)
    flow, cost = net.max_flow_min_cost(0, 1)
    assert flow == 3
    assert cost == 6.0
    assert net.flow_on(a) == 3


def test_flow_on_requires_forward_arc():
    net = MinCostFlow(2)
    net.add_arc(0, 1, 1, 0.0)
    with pytest.raises(ValueError):
        net.flow_on(1)


def test_max_flow_cap():
    net = MinCostFlow(2)
    net.add_arc(0, 1, 5, 1.0)
    flow, cost = net.max_flow_min_cost(0, 1, max_flow=2)
    assert flow == 2
    assert cost == 2.0


def test_prefers_cheap_path():
    # 0 -> 1 -> 3 (cost 2) vs 0 -> 2 -> 3 (cost 10); cap 1 each.
    net = MinCostFlow(4)
    cheap_a = net.add_arc(0, 1, 1, 1.0)
    net.add_arc(1, 3, 1, 1.0)
    exp_a = net.add_arc(0, 2, 1, 5.0)
    net.add_arc(2, 3, 1, 5.0)
    flow, cost = net.max_flow_min_cost(0, 3, max_flow=1)
    assert flow == 1
    assert cost == 2.0
    assert net.flow_on(cheap_a) == 1
    assert net.flow_on(exp_a) == 0


def test_residual_rerouting_needed():
    """Classic case where the second augmentation must push flow back."""
    # Two units 0 -> 3.  Middle arc tempts the first path.
    net = MinCostFlow(4)
    net.add_arc(0, 1, 1, 1.0)
    net.add_arc(0, 2, 1, 2.0)
    net.add_arc(1, 2, 1, 0.0)
    net.add_arc(1, 3, 1, 3.0)
    net.add_arc(2, 3, 1, 1.0)
    flow, cost = net.max_flow_min_cost(0, 3)
    assert flow == 2
    # Optimal: 0-1-2-3 (2) + 0-2... cap conflict; optimum is
    # 0-1-3 (4) + 0-2-3 (3) = 7 vs 0-1-2-3 (2) + 0-2-3 infeasible (2-3 cap).
    assert cost == 7.0


def test_disconnected_sink():
    net = MinCostFlow(3)
    net.add_arc(0, 1, 1, 1.0)
    flow, cost = net.max_flow_min_cost(0, 2)
    assert flow == 0
    assert cost == 0.0


def test_matches_networkx_on_random_networks():
    import random

    rng = random.Random(42)
    for trial in range(5):
        n = 12
        net = MinCostFlow(n)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        used = set()
        for _ in range(40):
            u, v = rng.sample(range(n), 2)
            if (u, v) in used:
                continue
            used.add((u, v))
            cap = rng.randint(1, 4)
            cost = rng.randint(0, 9)
            net.add_arc(u, v, cap, float(cost))
            g.add_edge(u, v, capacity=cap, weight=cost)
        flow, cost = net.max_flow_min_cost(0, n - 1)
        expected_flow_dict = nx.max_flow_min_cost(g, 0, n - 1)
        expected_flow = sum(expected_flow_dict[0].values()) - sum(
            d.get(0, 0) for d in expected_flow_dict.values()
        )
        expected_cost = nx.cost_of_flow(g, expected_flow_dict)
        assert flow == expected_flow
        assert cost == pytest.approx(expected_cost)


def test_add_node_extends_network():
    net = MinCostFlow(1)
    new = net.add_node()
    assert new == 1
    net.add_arc(0, 1, 1, 0.0)
    flow, _ = net.max_flow_min_cost(0, 1)
    assert flow == 1


def test_unit_grid_bipartite_assignment():
    """3 sources, 3 sinks, distinct costs: solver must find the cheap matching."""
    # nodes: 0 S, 1-3 left, 4-6 right, 7 T
    net = MinCostFlow(8)
    for left in (1, 2, 3):
        net.add_arc(0, left, 1, 0.0)
    costs = {
        (1, 4): 1,
        (1, 5): 4,
        (1, 6): 5,
        (2, 4): 2,
        (2, 5): 1,
        (2, 6): 4,
        (3, 4): 5,
        (3, 5): 2,
        (3, 6): 1,
    }
    for (u, v), c in costs.items():
        net.add_arc(u, v, 1, float(c))
    for right in (4, 5, 6):
        net.add_arc(right, 7, 1, 0.0)
    flow, cost = net.max_flow_min_cost(0, 7)
    assert flow == 3
    assert cost == 3.0  # diagonal matching
