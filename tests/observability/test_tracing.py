"""The tracer: nesting, closing, resume stitching, exports."""

import json

import pytest

from repro.observability import (
    NULL_TRACER,
    Tracer,
    read_trace_jsonl,
    validate_spans,
)


def test_spans_nest_on_the_stack():
    tracer = Tracer()
    with tracer.span("root", category="flow") as root:
        with tracer.span("stage-a", category="stage") as a:
            assert a.parent_id == root.span_id
        with tracer.span("stage-b", category="stage") as b:
            assert b.parent_id == root.span_id
            with tracer.span("inner", category="net") as inner:
                assert inner.parent_id == b.span_id
    assert root.parent_id is None
    assert all(s.closed for s in tracer.spans)
    assert [s.name for s in tracer.spans] == ["root", "stage-a", "stage-b", "inner"]


def test_span_ids_unique_within_trace():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    with tracer.span("c"):
        pass
    ids = [s.span_id for s in tracer.spans]
    assert len(ids) == len(set(ids))
    assert all(i.startswith(tracer.trace_id + ":") for i in ids)


def test_exception_records_error_attr_and_closes():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("it broke")
    (span,) = tracer.spans
    assert span.closed
    assert span.attrs["error"] == "ValueError: it broke"


def test_out_of_order_close_force_closes_orphans():
    tracer = Tracer()
    outer = tracer.span("outer")
    tracer.span("orphan")  # never explicitly closed
    outer.__exit__(None, None, None)
    orphan = next(s for s in tracer.spans if s.name == "orphan")
    assert orphan.closed
    assert orphan.attrs.get("force_closed") is True
    assert not tracer._stack


def test_current_span_id_tracks_innermost():
    tracer = Tracer()
    assert tracer.current_span_id() is None
    with tracer.span("a") as a:
        assert tracer.current_span_id() == a.span_id
        with tracer.span("b") as b:
            assert tracer.current_span_id() == b.span_id
        assert tracer.current_span_id() == a.span_id
    assert tracer.current_span_id() is None


def test_set_attaches_attributes():
    tracer = Tracer()
    with tracer.span("s", category="net", net_id=3) as span:
        span.set(routed=True, net_id=4)
    assert span.attrs == {"net_id": 4, "routed": True}


def test_export_jsonl_roundtrip(tmp_path):
    tracer = Tracer()
    with tracer.span("root", category="flow", design="S1"):
        with tracer.span("stage", category="stage"):
            pass
    path = tmp_path / "t.jsonl"
    assert tracer.export_jsonl(path) == 2
    docs = read_trace_jsonl(path)
    assert validate_spans(docs) == []
    assert [d["name"] for d in docs] == ["root", "stage"]
    assert docs[0]["attrs"] == {"design": "S1"}
    assert docs[1]["parent_id"] == docs[0]["span_id"]


def test_read_trace_jsonl_diagnoses_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"span_id": "a"}\nnot json\n')
    with pytest.raises(ValueError, match="2"):
        read_trace_jsonl(path)


def test_chrome_trace_format(tmp_path):
    tracer = Tracer()
    with tracer.span("root", category="flow"):
        pass
    doc = tracer.chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    (event,) = doc["traceEvents"]
    assert event["ph"] == "X"
    assert event["name"] == "root"
    assert event["dur"] >= 0
    path = tmp_path / "c.json"
    assert tracer.export_chrome(path) == 1
    assert json.loads(path.read_text())["traceEvents"][0]["cat"] == "flow"


def test_link_resume_stitches_and_avoids_id_collisions():
    first = Tracer()
    with first.span("route", category="flow"):
        with first.span("lm-routing", category="stage") as interrupted:
            carried = (first.trace_id, interrupted.span_id)
    resumed = Tracer()
    resumed.link_resume(*carried)
    with resumed.span("route", category="flow"):
        with resumed.span("lm-routing", category="stage"):
            pass
    assert resumed.trace_id == first.trace_id
    root = resumed.spans[0]
    assert root.parent_id == interrupted.span_id
    assert root.attrs["resumed_from"] == interrupted.span_id
    # Concatenating both traces yields one valid trace: no duplicate
    # ids, every parent resolves (or is marked resumed_from).
    both = [s.to_json() for s in first.spans + resumed.spans]
    assert validate_spans(both) == []


def test_resumed_trace_validates_standalone():
    resumed = Tracer()
    resumed.link_resume("sometrace", "sometrace:3")
    with resumed.span("route", category="flow"):
        pass
    assert validate_spans([s.to_json() for s in resumed.spans]) == []


def test_null_tracer_allocates_nothing():
    span_a = NULL_TRACER.span("anything", category="flow", net_id=1)
    span_b = NULL_TRACER.span("else")
    assert span_a is span_b  # one shared no-op span
    with span_a as entered:
        entered.set(ignored=True)
    assert NULL_TRACER.spans == []
    assert NULL_TRACER.current_span_id() is None
    assert NULL_TRACER.enabled is False
