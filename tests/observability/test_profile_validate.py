"""Trace profiling and the schema validators (the CI gate)."""

import json

from repro.observability import (
    Tracer,
    format_profile,
    profile_spans,
    profile_trace_file,
    validate_metrics_doc,
    validate_spans,
)
from repro.observability.validate import main as validate_main


def _sample_trace():
    tracer = Tracer()
    with tracer.span("route", category="flow", design="S1"):
        with tracer.span("lm-routing", category="stage"):
            with tracer.span("edge", category="net", net_id=1, astar_expansions=40):
                pass
            with tracer.span("edge", category="net", net_id=2, astar_expansions=10):
                pass
        with tracer.span("escape", category="stage"):
            pass
    return tracer


def test_profile_aggregates_stages_and_nets():
    tracer = _sample_trace()
    profile = profile_spans([s.to_json() for s in tracer.spans], top_k=5)
    assert profile.trace_id == tracer.trace_id
    assert profile.designs == ["S1"]
    assert [s.stage for s in profile.stages] == ["lm-routing", "escape"]
    assert all(s.spans == 1 for s in profile.stages)
    assert profile.flow_s > 0
    assert all(0.0 <= s.share <= 1.0 for s in profile.stages)
    # Nets ranked by expansions, stage column from the enclosing stage.
    assert [n.net_id for n in profile.top_nets] == [1, 2]
    assert profile.top_nets[0].astar_expansions == 40
    assert profile.top_nets[0].stages == ["lm-routing"]


def test_profile_top_k_limits_nets():
    tracer = _sample_trace()
    profile = profile_spans([s.to_json() for s in tracer.spans], top_k=1)
    assert len(profile.top_nets) == 1
    assert profile.top_nets[0].net_id == 1


def test_profile_sums_reentered_stages():
    tracer = Tracer()
    with tracer.span("route", category="flow"):
        with tracer.span("escape", category="stage"):
            pass
        with tracer.span("escape", category="stage"):
            pass
    profile = profile_spans([s.to_json() for s in tracer.spans])
    (row,) = profile.stages
    assert row.spans == 2


def test_format_profile_renders_tables():
    tracer = _sample_trace()
    profile = profile_spans([s.to_json() for s in tracer.spans])
    text = format_profile(profile)
    assert "per-stage wall clock" in text
    assert "lm-routing" in text
    assert "top 2 nets by A* expansions" in text


def test_profile_trace_file(tmp_path):
    tracer = _sample_trace()
    path = tmp_path / "t.jsonl"
    tracer.export_jsonl(path)
    profile = profile_trace_file(str(path), top_k=3)
    assert profile.n_spans == 5


def test_validate_spans_flags_structural_problems():
    good = {
        "trace_id": "t",
        "span_id": "t:1",
        "parent_id": None,
        "name": "root",
        "category": "flow",
        "ts": 0.0,
        "dur_s": 0.5,
        "attrs": {},
    }
    assert validate_spans([good]) == []
    duplicate = dict(good)
    assert any("duplicate" in p for p in validate_spans([good, duplicate]))
    missing = {k: v for k, v in good.items() if k != "name"}
    assert any("missing field 'name'" in p for p in validate_spans([missing]))
    dangling = dict(good, span_id="t:2", parent_id="t:99")
    assert any("not in this trace" in p for p in validate_spans([good, dangling]))
    stitched = dict(
        good, span_id="t:3", parent_id="other:1", attrs={"resumed_from": "other:1"}
    )
    assert validate_spans([good, stitched]) == []
    orphans_only = [dict(good, parent_id="gone:1")]
    assert any("not in this trace" in p for p in validate_spans(orphans_only))


def test_validate_spans_requires_a_root():
    a = {
        "trace_id": "t",
        "span_id": "t:1",
        "parent_id": "t:2",
        "name": "a",
        "category": "stage",
        "ts": 0.0,
        "dur_s": 0.1,
        "attrs": {},
    }
    b = dict(a, span_id="t:2", parent_id="t:1", name="b")
    assert any("no root" in p for p in validate_spans([a, b]))


def test_validate_metrics_doc():
    assert validate_metrics_doc({"counters": {"a": 1}, "gauges": {"g": 0.5}}) == []
    assert validate_metrics_doc([]) != []
    assert any("missing section" in p for p in validate_metrics_doc({"counters": {}}))
    bad_counter = {"counters": {"a": -1}, "gauges": {}}
    assert any("negative" in p for p in validate_metrics_doc(bad_counter))
    not_int = {"counters": {"a": 1.5}, "gauges": {}}
    assert any("integer" in p for p in validate_metrics_doc(not_int))
    bool_gauge = {"counters": {}, "gauges": {"g": True}}
    assert any("number" in p for p in validate_metrics_doc(bool_gauge))


def test_validate_main_exit_codes(tmp_path, capsys):
    tracer = _sample_trace()
    trace = tmp_path / "t.jsonl"
    tracer.export_jsonl(trace)
    metrics = tmp_path / "m.json"
    metrics.write_text(json.dumps({"counters": {"a": 1}, "gauges": {}}))
    assert validate_main([str(trace), str(metrics)]) == 0
    assert "OK" in capsys.readouterr().out

    broken = tmp_path / "broken.jsonl"
    broken.write_text('{"span_id": "only"}\n')
    assert validate_main([str(broken)]) == 1
    assert "error" in capsys.readouterr().err

    assert validate_main([]) == 2
