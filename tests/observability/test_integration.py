"""Observability wired through the full flow: spans, counters, resume."""

import time

from repro.core import PacorConfig
from repro.core.pacor import PacorRouter
from repro.designs import design_by_name
from repro.observability import (
    NULL_METRICS,
    NULL_TRACER,
    Metrics,
    Tracer,
    use,
    validate_spans,
)
from repro.robustness.faults import FaultSpec, inject


def _instrumented_run(name="S1", config=None):
    tracer, metrics = Tracer(), Metrics()
    router = PacorRouter(
        design_by_name(name), config, tracer=tracer, metrics=metrics
    )
    result = router.run()
    return router, result, tracer, metrics


def test_run_produces_nested_closed_spans():
    _, result, tracer, _ = _instrumented_run("S1")
    assert result.completion_rate == 1.0
    assert all(span.closed for span in tracer.spans)
    assert validate_spans([s.to_json() for s in tracer.spans]) == []
    root = tracer.spans[0]
    assert root.category == "flow" and root.attrs["design"] == "S1"
    stages = [s.name for s in tracer.spans if s.category == "stage"]
    assert stages == ["clustering", "lm-routing", "mst-routing", "escape", "detour"]
    assert all(
        s.parent_id == root.span_id
        for s in tracer.spans
        if s.category == "stage"
    )


def test_run_populates_kernel_counters():
    _, _, _, metrics = _instrumented_run("S1")
    counters = metrics.counter_values()
    assert counters["astar.expansions"] > 0
    assert counters["astar.heap_pushes"] >= counters["astar.expansions"]
    assert counters["negotiation.rounds"] >= 1
    assert counters["escape.mcf_solves"] >= 1
    assert counters["mcf.augmenting_paths"] >= 1
    assert counters["escape.rounds"] >= 1
    gauges = metrics.gauge_values()
    assert gauges["nets.total"] >= 1
    assert gauges["nets.unrouted"] == 0


def test_budget_and_metrics_share_the_expansion_counter():
    router, _, _, metrics = _instrumented_run("S2")
    assert (
        metrics.counter("astar.expansions")
        is router.budget.expansion_counter
    )
    assert (
        metrics.counter_values()["astar.expansions"]
        == router.budget.expansions_used
        > 0
    )


def test_context_installed_instruments_are_picked_up():
    tracer, metrics = Tracer(), Metrics()
    with use(tracer=tracer, metrics=metrics):
        router = PacorRouter(design_by_name("S1"))
        router.run()
    assert router.tracer is tracer
    assert router.metrics is metrics
    assert tracer.spans
    assert metrics.counter_values()["astar.expansions"] > 0


def test_spans_survive_injected_stage_fault():
    tracer, metrics = Tracer(), Metrics()
    router = PacorRouter(
        design_by_name("S1"), tracer=tracer, metrics=metrics
    )
    with inject(FaultSpec("mcf_solver_raise")):
        result = router.run()
    # The solver fault degrades to the sequential fallback; every span
    # still closes and the trace stays structurally valid.
    assert all(span.closed for span in tracer.spans)
    assert validate_spans([s.to_json() for s in tracer.spans]) == []
    assert any(i.kind == "solver-fallback" for i in result.incidents)


def test_incidents_carry_the_active_span_id():
    tracer, metrics = Tracer(), Metrics()
    router = PacorRouter(
        design_by_name("S1"), tracer=tracer, metrics=metrics
    )
    with inject(FaultSpec("mcf_solver_raise")):
        result = router.run()
    incident = next(i for i in result.incidents if i.kind == "solver-fallback")
    span_ids = {s.span_id for s in tracer.spans}
    assert incident.span_id in span_ids
    # The incident survives a JSON round-trip with its span id.
    from repro.robustness.incidents import Incident

    assert Incident.from_json(incident.to_json()).span_id == incident.span_id


def test_checkpoint_resume_stitches_one_trace():
    config = PacorConfig(astar_expansion_budget=200)
    router, result, tracer1, metrics1 = _instrumented_run("S3", config)
    checkpoint = router.interrupt_checkpoint
    assert checkpoint is not None
    doc = checkpoint.observability
    assert doc is not None
    assert doc["trace_id"] == tracer1.trace_id
    assert doc["span_id"] in {s.span_id for s in tracer1.spans}
    assert doc["counters"]["astar.expansions"] > 0
    assert metrics1.counter_values()["checkpoint.bytes"] > 0

    tracer2, metrics2 = Tracer(), Metrics()
    resumed = PacorRouter.from_checkpoint(
        design_by_name("S3"), checkpoint, tracer=tracer2, metrics=metrics2
    )
    assert resumed.carried_spans == doc["spans_recorded"] > 0
    assert resumed.carried_counters > 0
    result2 = resumed.run()
    assert result2.completion_rate == 1.0

    # Same trace id; the resumed root is parented on the interrupted
    # span; the concatenated files form one well-formed trace.
    assert tracer2.trace_id == tracer1.trace_id
    root2 = tracer2.spans[0]
    assert root2.attrs.get("resumed_from") == doc["span_id"]
    combined = [s.to_json() for s in tracer1.spans + tracer2.spans]
    assert validate_spans(combined) == []
    # Restored counters make the second registry cumulative for the
    # kernel counters the budget does not own.
    assert (
        metrics2.counter_values()["escape.mcf_solves"]
        >= doc["counters"].get("escape.mcf_solves", 0)
    )


def test_resume_without_observability_doc_is_fine():
    config = PacorConfig(astar_expansion_budget=200)
    router = PacorRouter(design_by_name("S3"), config)
    router.run()
    checkpoint = router.interrupt_checkpoint
    assert checkpoint is not None
    assert checkpoint.observability is None  # uninstrumented run
    result = PacorRouter.resume(design_by_name("S3"), checkpoint)
    assert result.completion_rate == 1.0


def test_disabled_instrumentation_overhead_is_small():
    design = design_by_name("S2")

    def min_of_3(tracer, metrics):
        best = float("inf")
        for _ in range(3):
            router = PacorRouter(design, tracer=tracer, metrics=metrics)
            started = time.perf_counter()
            router.run()
            best = min(best, time.perf_counter() - started)
        return best

    min_of_3(NULL_TRACER, NULL_METRICS)  # warm caches
    disabled = min_of_3(NULL_TRACER, NULL_METRICS)
    enabled = min_of_3(Tracer(), Metrics())
    # The no-op path must not be slower than the instrumented one beyond
    # scheduling noise (generous factor: CI machines are jittery).
    assert disabled <= enabled * 1.5 + 0.05
    # And it must record nothing.
    assert NULL_TRACER.spans == []
    assert NULL_METRICS.counter_values() == {}
