"""The metrics registry: counters, gauges, adoption, restore, no-ops."""

import json

import pytest

from repro.observability import (
    NULL_METRICS,
    Counter,
    Metrics,
    NullMetrics,
    validate_metrics_doc,
)


def test_counter_increments():
    counter = Counter("x")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_registry_get_or_create_returns_same_object():
    metrics = Metrics()
    assert metrics.counter("a.b") is metrics.counter("a.b")
    assert metrics.gauge("g") is metrics.gauge("g")
    assert metrics.counter("a.b") is not metrics.counter("a.c")


def test_gauge_last_value_wins():
    metrics = Metrics()
    metrics.gauge("g").set(3)
    metrics.gauge("g").set(7.5)
    assert metrics.gauge_values() == {"g": 7.5}


def test_adopt_registers_external_counter():
    metrics = Metrics()
    external = Counter()
    adopted = metrics.adopt("astar.expansions", external)
    assert adopted is external
    assert external.name == "astar.expansions"
    external.inc(9)
    assert metrics.counter_values()["astar.expansions"] == 9
    # Subsequent lookups hand back the adopted object itself.
    assert metrics.counter("astar.expansions") is external


def test_adopt_folds_prior_count_into_adoptee():
    metrics = Metrics()
    metrics.counter("n").inc(5)
    external = Counter()
    external.inc(2)
    metrics.adopt("n", external)
    assert external.value == 7
    assert metrics.counter_values() == {"n": 7}


def test_restore_counters_folds_values_in():
    metrics = Metrics()
    metrics.counter("a").inc(1)
    carried = metrics.restore_counters({"a": 10, "b": 3})
    assert carried == 2
    assert metrics.counter_values() == {"a": 11, "b": 3}


def test_snapshot_merges_counters_and_gauges():
    metrics = Metrics()
    metrics.counter("c").inc(2)
    metrics.gauge("g").set(1.5)
    assert metrics.snapshot() == {"c": 2, "g": 1.5}


def test_to_json_is_schema_valid():
    metrics = Metrics()
    metrics.counter("a.b").inc(3)
    metrics.gauge("nets.total").set(4)
    assert validate_metrics_doc(metrics.to_json()) == []


def test_export_json_roundtrip(tmp_path):
    metrics = Metrics()
    metrics.counter("k").inc(12)
    path = tmp_path / "m.json"
    metrics.export_json(path)
    doc = json.loads(path.read_text())
    assert doc["counters"] == {"k": 12}


@pytest.mark.parametrize("registry", [NULL_METRICS, NullMetrics()])
def test_null_metrics_is_inert(registry):
    assert registry.enabled is False
    counter = registry.counter("anything")
    counter.inc(100)
    assert counter.value == 0
    gauge = registry.gauge("g")
    gauge.set(9)
    assert gauge.value == 0
    assert registry.counter_values() == {}
    assert registry.restore_counters({"a": 5}) == 0


def test_null_metrics_shares_one_instrument():
    assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
    assert NULL_METRICS.gauge("a") is NULL_METRICS.gauge("b")


def test_null_adopt_leaves_counter_alone():
    external = Counter("mine")
    external.inc(3)
    assert NULL_METRICS.adopt("other", external) is external
    assert external.value == 3
    assert NULL_METRICS.counter_values() == {}
