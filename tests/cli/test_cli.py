"""Tests for the command-line front-end."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_route_s1(capsys):
    assert main(["route", "S1", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "S1" in out
    assert "completion=100.0%" in out
    assert "verification OK" in out


def test_route_with_method(capsys):
    assert main(["route", "S1", "--method", "w/o Sel"]) == 0
    assert "w/o Sel" in capsys.readouterr().out


def test_route_events_and_ascii(capsys):
    assert main(["route", "S1", "--events", "--ascii"]) == 0
    out = capsys.readouterr().out
    assert "clustering" in out
    assert "V" in out


def test_route_svg_export(tmp_path, capsys):
    svg_path = tmp_path / "s1.svg"
    assert main(["route", "S1", "--svg", str(svg_path)]) == 0
    assert svg_path.exists()
    assert svg_path.read_text().startswith("<svg")


def test_table1(capsys):
    assert main(["table1", "--no-chips"]) == 0
    out = capsys.readouterr().out
    assert "S1" in out and "12x12" in out
    assert "Chip1" not in out


def test_table2_single_design(capsys):
    assert main(["table2", "--designs", "S1"]) == 0
    out = capsys.readouterr().out
    assert "#Matched(PACOR)" in out
    assert "S1" in out


def test_generate_and_route_roundtrip(tmp_path, capsys):
    out_file = tmp_path / "custom.json"
    assert (
        main(
            [
                "generate",
                str(out_file),
                "--width",
                "25",
                "--height",
                "25",
                "--cluster-sizes",
                "2",
                "3",
                "--singletons",
                "2",
                "--pins",
                "16",
                "--obstacles",
                "8",
                "--seed",
                "4",
            ]
        )
        == 0
    )
    doc = json.loads(out_file.read_text())
    assert doc["width"] == 25
    capsys.readouterr()
    assert main(["route", str(out_file), "--verify"]) == 0
    assert "verification OK" in capsys.readouterr().out


def test_unknown_design_exits_2_with_one_line_diagnosis(capsys):
    # Regression: this used to escape as a raw ValueError traceback
    # because _resolve_design ran outside main()'s try block.
    assert main(["route", "S99"]) == 2
    err = capsys.readouterr().err
    assert "error: unknown design 'S99'" in err
    assert "Traceback" not in err


def test_unknown_design_exits_2_in_every_subcommand(capsys):
    for argv in (
        ["route", "NOPE"],
        ["table2", "--designs", "NOPE"],
        ["skew", "NOPE"],
    ):
        assert main(argv) == 2, argv
        assert "error:" in capsys.readouterr().err


def test_skew_command(capsys):
    assert main(["skew", "S1"]) == 0
    out = capsys.readouterr().out
    assert "switching skew" in out
    assert "quality ratio" in out


def test_skew_command_linear_model(capsys):
    assert main(["skew", "S1", "--alpha", "1.0", "--tau0", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "alpha=1" in out


def test_route_json_export(tmp_path, capsys):
    out = tmp_path / "s1_result.json"
    assert main(["route", "S1", "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["summary"]["design"] == "S1"
    assert doc["summary"]["completion"] == 1.0
    assert len(doc["nets"]) >= 3
    assert all("segments" in n for n in doc["nets"])


def test_route_checkpoint_written_on_budget_exhaustion(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    assert (
        main(
            [
                "route",
                "S3",
                "--expansion-budget",
                "200",
                "--checkpoint",
                str(ckpt),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "degraded" in captured.err
    assert f"wrote {ckpt}" in captured.out
    doc = json.loads(ckpt.read_text())
    assert doc["version"] == 1
    assert doc["design"]["name"] == "S3"


def test_route_checkpoint_not_written_without_interruption(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    assert main(["route", "S1", "--checkpoint", str(ckpt)]) == 0
    captured = capsys.readouterr()
    assert not ckpt.exists()
    assert "no budget interruption" in captured.err


def test_resume_completes_an_interrupted_run(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    main(["route", "S3", "--expansion-budget", "200", "--checkpoint", str(ckpt)])
    capsys.readouterr()
    assert main(["resume", str(ckpt), "--verify"]) == 0
    out = capsys.readouterr().out
    assert "resuming S3" in out
    assert "completion=100.0%" in out
    assert "verification OK" in out


def test_resume_malformed_checkpoint_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"bogus": 1}')
    assert main(["resume", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "missing required field" in err
    assert "Traceback" not in err


def test_resume_missing_file_exits_2(tmp_path, capsys):
    assert main(["resume", str(tmp_path / "nope.json")]) == 2
    assert "file not found" in capsys.readouterr().err


def test_show_saved_results(tmp_path, capsys):
    rows = [
        {
            "design": "S1",
            "method": "PACOR",
            "n_clusters": 2,
            "matched_clusters": 2,
            "total_matched_length": 14,
            "total_length": 17,
            "completion": 1.0,
            "runtime_s": 0.01,
        }
    ]
    path = tmp_path / "rows.json"
    path.write_text(json.dumps(rows))
    assert main(["show", str(path)]) == 0
    out = capsys.readouterr().out
    assert "PACOR" in out and "100%" in out


def test_route_trace_and_metrics_export(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.json"
    chrome = tmp_path / "c.json"
    assert (
        main(
            [
                "route",
                "S1",
                "--trace",
                str(trace),
                "--metrics",
                str(metrics),
                "--chrome-trace",
                str(chrome),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert f"wrote {trace}" in out
    assert f"wrote {metrics}" in out
    assert f"wrote {chrome}" in out
    from repro.observability import (
        read_trace_jsonl,
        validate_metrics_doc,
        validate_spans,
    )

    docs = read_trace_jsonl(trace)
    assert validate_spans(docs) == []
    assert any(d["category"] == "stage" for d in docs)
    metrics_doc = json.loads(metrics.read_text())
    assert validate_metrics_doc(metrics_doc) == []
    assert metrics_doc["counters"]["astar.expansions"] > 0
    chrome_doc = json.loads(chrome.read_text())
    assert chrome_doc["traceEvents"][0]["ph"] == "X"


def test_profile_command_prints_stage_table(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    main(["route", "S1", "--trace", str(trace)])
    capsys.readouterr()
    assert main(["profile", str(trace), "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "per-stage wall clock" in out
    assert "lm-routing" in out
    assert "nets by A* expansions" in out


def test_profile_command_rejects_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert main(["profile", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_route_reports_incident_summary(capsys):
    assert main(["route", "S3", "--expansion-budget", "200"]) == 0
    out = capsys.readouterr().out
    assert "incidents:" in out
    assert "degraded" in out


def test_resume_reports_carried_observability(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    trace1 = tmp_path / "t1.jsonl"
    main(
        [
            "route",
            "S3",
            "--expansion-budget",
            "200",
            "--checkpoint",
            str(ckpt),
            "--trace",
            str(trace1),
        ]
    )
    capsys.readouterr()
    trace2 = tmp_path / "t2.jsonl"
    assert main(["resume", str(ckpt), "--trace", str(trace2)]) == 0
    out = capsys.readouterr().out
    assert "carried over from the interrupted run" in out
    assert "trace spans stitched" in out
    # The two trace files concatenate into one valid trace.
    from repro.observability import read_trace_jsonl, validate_spans

    combined = read_trace_jsonl(trace1) + read_trace_jsonl(trace2)
    assert validate_spans(combined) == []
    assert len({d["trace_id"] for d in combined}) == 1


# -- checkpoint diagnostics (robustness PR satellite) -------------------------


def _interrupted_checkpoint(tmp_path):
    ckpt = tmp_path / "ckpt.json"
    main(["route", "S3", "--expansion-budget", "200", "--checkpoint", str(ckpt)])
    assert ckpt.exists(), "budget never tripped"
    return ckpt


def test_resume_version_mismatch_exits_2(tmp_path, capsys):
    ckpt = _interrupted_checkpoint(tmp_path)
    capsys.readouterr()
    doc = json.loads(ckpt.read_text())
    doc["version"] = 99
    ckpt.write_text(json.dumps(doc))
    assert main(["resume", str(ckpt)]) == 2
    err = capsys.readouterr().err
    assert "unsupported checkpoint version 99" in err
    assert "Traceback" not in err
    assert err.strip().count("\n") == 0  # one-line diagnostic


def test_resume_truncated_net_doc_exits_2(tmp_path, capsys):
    ckpt = _interrupted_checkpoint(tmp_path)
    capsys.readouterr()
    doc = json.loads(ckpt.read_text())
    doc["nets"][0].pop("routed")
    ckpt.write_text(json.dumps(doc))
    assert main(["resume", str(ckpt)]) == 2
    err = capsys.readouterr().err
    assert "missing field 'routed'" in err
    assert "Traceback" not in err
    assert err.strip().count("\n") == 0  # one-line diagnostic


# -- physical faults and repair -----------------------------------------------


def _fault_file_hitting(tmp_path, result_path):
    """Write a fault map blocking one routed channel cell of the result."""
    from repro.designs import design_by_name

    doc = json.loads(result_path.read_text())
    design = design_by_name(doc["summary"]["design"])
    keep_out = {(v.position.x, v.position.y) for v in design.valves}
    for net in doc["nets"]:
        if net["routed"]:
            keep_out.add(tuple(net["pin"]))
    cell = next(
        tuple(c)
        for net in doc["nets"]
        if net["routed"]
        for c in net["cells"]
        if tuple(c) not in keep_out
    )
    path = tmp_path / "faults.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "faulty_cells": [list(cell)],
                "stuck_valves": [],
                "events": [],
            }
        )
    )
    return path


def test_repair_heals_a_saved_result(tmp_path, capsys):
    res = tmp_path / "r.json"
    main(["route", "S1", "--json", str(res)])
    capsys.readouterr()
    faults_path = _fault_file_hitting(tmp_path, res)
    healed = tmp_path / "healed.json"
    assert (
        main(
            [
                "repair",
                str(res),
                "--faults",
                str(faults_path),
                "--verify",
                "--json",
                str(healed),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "1 nets affected, 1 repaired, 0 degraded" in out
    assert "verification OK" in out
    assert healed.exists()


def test_repair_without_faults_exits_2(tmp_path, capsys):
    res = tmp_path / "r.json"
    main(["route", "S1", "--json", str(res)])
    capsys.readouterr()
    assert main(["repair", str(res)]) == 2
    assert "--faults" in capsys.readouterr().err


def test_repair_rejects_malformed_fault_file(tmp_path, capsys):
    res = tmp_path / "r.json"
    main(["route", "S1", "--json", str(res)])
    capsys.readouterr()
    bad = tmp_path / "faults.json"
    bad.write_text('{"version": 42}')
    assert main(["repair", str(res), "--faults", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "unsupported fault-map version" in err
    assert "Traceback" not in err


def test_route_with_static_faults(tmp_path, capsys):
    res = tmp_path / "r.json"
    main(["route", "S1", "--json", str(res)])
    capsys.readouterr()
    faults_path = _fault_file_hitting(tmp_path, res)
    assert main(["route", "S1", "--faults", str(faults_path), "--verify"]) == 0
    out = capsys.readouterr().out
    assert "completion=100.0%" in out
    assert "verification OK" in out


# -- service commands (serve / submit / jobs / hash) -------------------------


def test_hash_prints_canonical_hash(capsys):
    from repro.designs import design_by_name

    assert main(["hash", "S1"]) == 0
    out = capsys.readouterr().out.strip()
    assert out == design_by_name("S1").canonical_hash()
    assert len(out) == 64


def test_hash_with_name_suffix(capsys):
    assert main(["hash", "S2", "--with-name"]) == 0
    out = capsys.readouterr().out.strip()
    digest, name = out.split()
    assert len(digest) == 64
    assert name == "S2"


def test_hash_is_stable_across_save_reload(tmp_path, capsys):
    """A design saved to JSON and re-hashed from the file matches."""
    import json as _json

    from repro.designs import design_by_name, design_to_json

    path = tmp_path / "s1.json"
    path.write_text(_json.dumps(design_to_json(design_by_name("S1"))))
    assert main(["hash", str(path)]) == 0
    out = capsys.readouterr().out.strip()
    assert out == design_by_name("S1").canonical_hash()


def test_hash_unknown_design_exits_2(capsys):
    assert main(["hash", "S99"]) == 2
    assert "Traceback" not in capsys.readouterr().err


def test_submit_without_service_location_exits_2(capsys):
    assert main(["submit", "S1"]) == 2
    err = capsys.readouterr().err
    assert "--url" in err or "--root" in err


def test_submit_with_missing_service_json_exits_2(tmp_path, capsys):
    assert main(["submit", "S1", "--root", str(tmp_path)]) == 2
    assert "service.json" in capsys.readouterr().err


def test_jobs_with_malformed_service_json_exits_2(tmp_path, capsys):
    (tmp_path / "service.json").write_text("{broken")
    assert main(["jobs", "--root", str(tmp_path)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_submit_wait_and_jobs_against_live_service(tmp_path, capsys):
    """Full CLI loop: serve (in-process), submit --wait, jobs, cache hit."""
    from repro.service import PacorService, ServiceAPIServer

    service = PacorService(tmp_path / "svc", workers=1)
    server = ServiceAPIServer(service)
    service.start()
    server.start()
    try:
        assert (
            main(["submit", "S1", "--url", server.url, "--wait"]) == 0
        )
        out = capsys.readouterr().out
        assert "j000001: succeeded" in out
        assert "completion=100.0%" in out
        # Identical re-submission answers from the cache.
        assert (
            main(["submit", "S1", "--url", server.url, "--wait"]) == 0
        )
        assert "(cache hit)" in capsys.readouterr().out
        assert main(["jobs", "--url", server.url]) == 0
        table = capsys.readouterr().out
        assert "j000001" in table and "j000002" in table
        assert "cache hit" in table
        assert main(["jobs", "--url", server.url, "--stats"]) == 0
        stats = capsys.readouterr().out
        assert '"service.cache_hits": 1' in stats
    finally:
        server.stop()
        service.stop(graceful=False, timeout=10.0)
