"""CLI coverage for the layer-axis flags: --layers, --via-cost, --fpva."""

import json

import pytest

from repro.cli import main
from repro.designs import load_design


def test_route_with_layers_flag(capsys):
    assert main(["route", "S1", "--layers", "2", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "completion=100.0%" in out
    assert "verification OK" in out


def test_route_layers_json_matches_planar(tmp_path, capsys):
    # S1 lifted onto two open layers routes exactly like the planar
    # run whenever vias never pay off (the layers=1 equivalence story
    # seen through the CLI).
    planar = tmp_path / "planar.json"
    lifted = tmp_path / "lifted.json"
    assert main(["route", "S1", "--json", str(planar)]) == 0
    assert main(["route", "S1", "--layers", "1", "--json", str(lifted)]) == 0
    doc_a = json.loads(planar.read_text())
    doc_b = json.loads(lifted.read_text())
    doc_a["summary"].pop("runtime_s", None)
    doc_b["summary"].pop("runtime_s", None)
    assert doc_a == doc_b


def test_route_rejects_bad_layers(capsys):
    assert main(["route", "S1", "--layers", "0"]) == 2
    assert "error" in capsys.readouterr().err


def test_generate_layered_design(tmp_path, capsys):
    out_file = tmp_path / "layered.json"
    assert (
        main(
            [
                "generate",
                "--width",
                "14",
                "--height",
                "14",
                "--layers",
                "2",
                "--via-cost",
                "3",
                "--seed",
                "7",
                str(out_file),
            ]
        )
        == 0
    )
    design = load_design(str(out_file))
    assert design.grid.layers == 2
    assert design.grid.via_cost == 3


def test_generate_requires_dimensions_without_fpva(tmp_path, capsys):
    out_file = tmp_path / "x.json"
    assert main(["generate", str(out_file)]) == 2
    assert "--width and --height" in capsys.readouterr().err


def test_generate_fpva_and_route(tmp_path, capsys):
    out_file = tmp_path / "fpva.json"
    assert (
        main(["generate", str(out_file), "--fpva", "3x3"]) == 0
    )
    design = load_design(str(out_file))
    assert design.name == "fpva-3x3"
    assert len(design.valves) == 9
    assert main(["route", str(out_file), "--verify"]) == 0
    out = capsys.readouterr().out
    assert "completion=100.0%" in out


def test_generate_fpva_rejects_bad_shape(tmp_path, capsys):
    out_file = tmp_path / "bad.json"
    assert (
        main(["generate", str(out_file), "--fpva", "3by3"]) == 2
    )
    assert "--fpva wants ROWSxCOLS" in capsys.readouterr().err
