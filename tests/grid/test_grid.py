"""Tests for the routing grid and obstacle map."""

import pytest

from repro.geometry import Point, Rect
from repro.grid import RoutingGrid


def test_dimensions_validated():
    with pytest.raises(ValueError):
        RoutingGrid(0, 5)
    with pytest.raises(ValueError):
        RoutingGrid(5, -1)


def test_index_point_roundtrip(grid10):
    for p in [Point(0, 0), Point(9, 9), Point(3, 7)]:
        assert grid10.point(grid10.index(p)) == p


def test_in_bounds(grid10):
    assert grid10.in_bounds(Point(0, 0))
    assert grid10.in_bounds(Point(9, 9))
    assert not grid10.in_bounds(Point(10, 0))
    assert not grid10.in_bounds(Point(0, -1))


def test_obstacle_set_and_query(grid10):
    p = Point(4, 4)
    assert grid10.is_free(p)
    grid10.set_obstacle(p)
    assert grid10.is_obstacle(p)
    assert not grid10.is_free(p)
    grid10.set_obstacle(p, False)
    assert grid10.is_free(p)


def test_set_obstacle_out_of_bounds_raises(grid10):
    with pytest.raises(ValueError):
        grid10.set_obstacle(Point(10, 10))


def test_off_grid_is_not_free(grid10):
    assert not grid10.is_free(Point(-1, 0))


def test_rect_obstacle_clipped(grid10):
    grid10.add_rect_obstacle(Rect(8, 8, 15, 15))
    assert grid10.obstacle_count() == 4  # only the on-chip 2x2 corner
    assert grid10.is_obstacle(Point(9, 9))


def test_obstacle_cells_iteration(grid10):
    cells = {Point(1, 1), Point(2, 2)}
    grid10.add_obstacles(cells)
    assert set(grid10.obstacle_cells()) == cells


def test_free_neighbors_respects_obstacles(grid10):
    grid10.set_obstacle(Point(1, 0))
    neighbors = set(grid10.free_neighbors(Point(0, 0)))
    assert neighbors == {Point(0, 1)}


def test_boundary_cells_count_and_membership(grid10):
    boundary = grid10.boundary_cells()
    assert len(boundary) == 4 * 10 - 4
    assert len(set(boundary)) == len(boundary)
    assert all(grid10.is_boundary(p) for p in boundary)
    assert not grid10.is_boundary(Point(5, 5))


def test_boundary_cells_degenerate_grids():
    line = RoutingGrid(5, 1)
    assert len(set(line.boundary_cells())) == 5
    column = RoutingGrid(1, 4)
    assert len(set(column.boundary_cells())) == 4


def test_copy_is_independent(grid10):
    grid10.set_obstacle(Point(3, 3))
    clone = grid10.copy()
    clone.set_obstacle(Point(4, 4))
    assert grid10.is_obstacle(Point(3, 3))
    assert not grid10.is_obstacle(Point(4, 4))
    assert clone.is_obstacle(Point(3, 3))


def test_extent(grid10):
    assert grid10.extent() == Rect(0, 0, 9, 9)
