"""Tests for the per-net occupancy overlay."""

import pytest

from repro.geometry import Point
from repro.grid import FREE, Occupancy


def test_initially_free(occupancy10):
    assert occupancy10.owner(Point(0, 0)) == FREE
    assert occupancy10.is_free(Point(5, 5))
    assert occupancy10.occupied_count() == 0


def test_occupy_and_owner(occupancy10):
    cells = [Point(1, 1), Point(1, 2)]
    occupancy10.occupy(cells, net=7)
    assert occupancy10.owner(Point(1, 1)) == 7
    assert occupancy10.cells_of(7) == set(cells)
    assert occupancy10.occupied_count() == 2


def test_occupy_conflict_raises(occupancy10):
    occupancy10.occupy([Point(2, 2)], net=1)
    with pytest.raises(ValueError):
        occupancy10.occupy([Point(2, 2)], net=2)


def test_occupy_same_net_is_idempotent(occupancy10):
    occupancy10.occupy([Point(2, 2)], net=1)
    occupancy10.occupy([Point(2, 2)], net=1)
    assert occupancy10.occupied_count() == 1


def test_occupy_with_free_sentinel_rejected(occupancy10):
    with pytest.raises(ValueError):
        occupancy10.occupy([Point(0, 0)], net=FREE)


def test_release_returns_cells(occupancy10):
    cells = {Point(3, 3), Point(3, 4)}
    occupancy10.occupy(cells, net=5)
    released = occupancy10.release(5)
    assert released == cells
    assert occupancy10.is_free(Point(3, 3))
    assert occupancy10.occupied_count() == 0


def test_release_unknown_net_is_noop(occupancy10):
    assert occupancy10.release(99) == set()


def test_release_cells_partial(occupancy10):
    occupancy10.occupy([Point(1, 1), Point(1, 2)], net=3)
    occupancy10.release_cells([Point(1, 1)])
    assert occupancy10.is_free(Point(1, 1))
    assert occupancy10.owner(Point(1, 2)) == 3
    assert occupancy10.cells_of(3) == {Point(1, 2)}


def test_is_routable_semantics(grid10, occupancy10):
    grid10.set_obstacle(Point(4, 4))
    occupancy10.occupy([Point(5, 5)], net=1)
    assert not occupancy10.is_routable(Point(4, 4), net=1)  # static obstacle
    assert occupancy10.is_routable(Point(5, 5), net=1)  # own net
    assert not occupancy10.is_routable(Point(5, 5), net=2)  # other net
    assert occupancy10.is_routable(Point(6, 6), net=2)  # free


def test_nets_iteration(occupancy10):
    occupancy10.occupy([Point(0, 0)], net=1)
    occupancy10.occupy([Point(1, 0)], net=2)
    occupancy10.release(1)
    assert set(occupancy10.nets()) == {2}


# --------------------------------------------------------------------------
# Single-pass snapshot/consistency walks (cell-id refactor regression)


def test_snapshot_walks_never_round_trip_through_grid_index(monkeypatch):
    """export/find/repair run one flat owner-array pass, no grid.index.

    Before the cell-id refactor these walks called ``grid.index`` once
    per grid cell per net bucket; on a 512x512 grid with a sparse
    overlay that is hundreds of thousands of needless Point round-trips.
    """
    from repro.grid import RoutingGrid

    grid = RoutingGrid(512, 512)
    occupancy = Occupancy(grid)
    occupancy.occupy([Point(5, 7), Point(6, 7), Point(7, 7)], net=1)
    occupancy.occupy_ids([100_000, 200_000], net=2)
    # Manufacture an inconsistency so repair() has real work to do
    # (through the sanitizer's escape hatch so the corruption is legal
    # under REPRO_SANITIZE=1 too).
    from repro.analysis.sanitize import unprotected

    with unprotected(occupancy):
        occupancy._owner[250_000] = 3

    calls = {"n": 0}
    original = RoutingGrid.index

    def counting_index(self, p):
        calls["n"] += 1
        return original(self, p)

    monkeypatch.setattr(RoutingGrid, "index", counting_index)

    state = occupancy.export_state()
    assert state["nets"] == {
        "1": [[5, 7], [6, 7], [7, 7]],
        "2": [[100_000 % 512, 100_000 // 512], [200_000 % 512, 200_000 // 512]],
    }
    assert [250_000 % 512, 250_000 // 512, 3] in state["owner_cells"]

    bad = occupancy.find_inconsistencies()
    assert bad == [Point(250_000 % 512, 250_000 // 512)]
    assert occupancy.repair() == bad
    assert occupancy.find_inconsistencies() == []
    assert occupancy.owner_id(250_000) == 3

    assert calls["n"] == 0, "snapshot walks must stay on flat cell ids"


def test_release_cell_ids_drops_emptied_buckets(occupancy10):
    """Regression: a fully released net must not leak an empty bucket.

    Pre-fix, ``release_cell_ids`` discarded the ids but kept the net's
    empty set in the inverted index, so every bucket iteration
    (``export_state``, ``find_inconsistencies``, blocked-mask fusion)
    kept paying for nets long gone — negotiation runs thousands of
    release rounds through here.
    """
    occupancy10.occupy([Point(1, 1), Point(2, 1)], net=7)
    occupancy10.occupy([Point(5, 5)], net=8)
    occupancy10.release_cells([Point(1, 1), Point(2, 1)])
    assert 7 not in occupancy10._cells
    assert occupancy10.cells_of(7) == set()
    # The partially released net keeps its (non-empty) bucket.
    occupancy10.release_cell_ids([occupancy10.grid.index(Point(9, 9))])
    assert set(occupancy10._cells) == {8}


def test_release_cell_ids_mixed_owners_drops_only_emptied(occupancy10):
    occupancy10.occupy([Point(0, 0)], net=1)
    occupancy10.occupy([Point(1, 0), Point(2, 0)], net=2)
    index = occupancy10.grid.index
    occupancy10.release_cell_ids(
        [index(Point(0, 0)), index(Point(1, 0)), index(Point(3, 3))]
    )
    assert set(occupancy10._cells) == {2}
    assert occupancy10.cells_of_ids(2) == {index(Point(2, 0))}
