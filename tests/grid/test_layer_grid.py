"""Layer-axis grid behaviour: ids, via masks, plane restriction, copy."""

import pytest

from repro.geometry import Point
from repro.geometry.point import Point3, cell_point
from repro.grid import RoutingGrid


class TestLayeredIndexing:
    def test_flat_ids_stack_planes(self):
        grid = RoutingGrid(4, 3, 2)
        assert grid.plane == 12
        assert grid.size == 24
        assert grid.index(Point(1, 2)) == 9
        assert grid.index(cell_point(1, 2, 1)) == 21

    def test_point_materialises_mixed_arities(self):
        grid = RoutingGrid(4, 3, 2)
        assert grid.point(9) == Point(1, 2)
        assert type(grid.point(9)) is Point
        upper = grid.point(21)
        assert isinstance(upper, Point3)
        assert tuple(upper) == (1, 2, 1)

    def test_index_point_round_trip(self):
        grid = RoutingGrid(5, 4, 3)
        for cid in range(grid.size):
            assert grid.index(grid.point(cid)) == cid

    def test_in_bounds_checks_layer(self):
        grid = RoutingGrid(4, 4, 2)
        assert grid.in_bounds(cell_point(0, 0, 1))
        assert not grid.in_bounds(cell_point(0, 0, 2))
        assert RoutingGrid(4, 4).in_bounds(cell_point(0, 0, 1)) is False

    def test_via_parameters_validated(self):
        with pytest.raises(ValueError):
            RoutingGrid(4, 4, 0)
        with pytest.raises(ValueError):
            RoutingGrid(4, 4, 2, via_cost=0)
        with pytest.raises(ValueError):
            RoutingGrid(4, 4, 2, via_length=0)


class TestViaMask:
    def test_default_mask_allows_everywhere(self):
        grid = RoutingGrid(4, 4, 2)
        assert grid.via_allowed(Point(2, 2))
        assert grid.blocked_via_sites() == []

    def test_keepout_blocks_column_and_bumps_version(self):
        grid = RoutingGrid(4, 4, 2)
        before = grid.obstacle_version()
        grid.set_via_blocked(Point(2, 2))
        assert not grid.via_allowed(Point(2, 2))
        assert grid.blocked_via_sites() == [Point(2, 2)]
        assert grid.obstacle_version() > before
        grid.set_via_blocked(Point(2, 2), blocked=False)
        assert grid.via_allowed(Point(2, 2))

    def test_obstacles_are_per_layer(self):
        grid = RoutingGrid(4, 4, 2)
        grid.set_obstacle(cell_point(1, 1, 1))
        assert grid.is_obstacle(cell_point(1, 1, 1))
        assert grid.is_free(Point(1, 1))
        assert grid.obstacle_count() == 1


class TestPlaneGrid:
    def test_single_layer_grid_returns_itself(self):
        grid = RoutingGrid(6, 6)
        assert grid.plane_grid() is grid

    def test_restriction_keeps_layer_zero_obstacles_only(self):
        grid = RoutingGrid(6, 5, 3)
        grid.set_obstacle(Point(1, 1))
        grid.set_obstacle(cell_point(2, 2, 1))
        plane = grid.plane_grid()
        assert plane.layers == 1
        assert plane.width == 6 and plane.height == 5
        assert plane.is_obstacle(Point(1, 1))
        assert plane.is_free(Point(2, 2))
        assert plane.obstacle_version() == grid.obstacle_version()

    def test_restriction_is_independent(self):
        grid = RoutingGrid(6, 5, 2)
        plane = grid.plane_grid()
        plane.set_obstacle(Point(0, 0))
        assert grid.is_free(Point(0, 0))


class TestCopy:
    def test_copy_carries_version(self):
        # Regression: a copy that reset _version to 0 let SpaceCache
        # serve a stale fused mask for the copied grid.
        grid = RoutingGrid(6, 6)
        grid.set_obstacle(Point(3, 3))
        grid.set_obstacle(Point(4, 4))
        copied = grid.copy()
        assert copied.obstacle_version() == grid.obstacle_version()

    def test_copy_carries_layer_axis(self):
        grid = RoutingGrid(5, 4, 3, via_cost=2, via_length=4)
        grid.set_obstacle(cell_point(1, 1, 2))
        grid.set_via_blocked(Point(2, 2))
        copied = grid.copy()
        assert copied.layers == 3
        assert copied.via_cost == 2 and copied.via_length == 4
        assert copied.is_obstacle(cell_point(1, 1, 2))
        assert not copied.via_allowed(Point(2, 2))

    def test_copy_is_independent(self):
        grid = RoutingGrid(5, 5, 2)
        copied = grid.copy()
        copied.set_obstacle(Point(1, 1))
        copied.set_via_blocked(Point(3, 3))
        assert grid.is_free(Point(1, 1))
        assert grid.via_allowed(Point(3, 3))
