"""The FPVA generator: shape, determinism and routability."""

import pytest

from repro.core import PacorConfig, run_pacor
from repro.designs import generate_fpva
from repro.geometry import Point


class TestFpvaShape:
    def test_matrix_geometry(self):
        design = generate_fpva(3, 4, pitch=3, margin=3)
        assert design.name == "fpva-3x4"
        assert design.grid.width == 2 * 3 + 3 * 3 + 1
        assert design.grid.height == 2 * 3 + 2 * 3 + 1
        assert len(design.valves) == 12
        positions = {v.position for v in design.valves}
        assert Point(3, 3) in positions
        assert Point(3 + 3 * 3, 3 + 2 * 3) in positions
        assert design.lm_groups == []

    def test_unique_sequences_make_singleton_nets(self):
        design = generate_fpva(3, 3)
        sequences = {v.sequence.steps for v in design.valves}
        assert len(sequences) == len(design.valves)

    def test_pins_on_the_boundary(self):
        design = generate_fpva(2, 2)
        assert len(design.control_pins) == 4
        for pin in design.control_pins:
            assert design.grid.is_boundary(pin)

    def test_deterministic(self):
        assert (
            generate_fpva(3, 3).canonical_hash()
            == generate_fpva(3, 3).canonical_hash()
        )

    def test_layered_variant(self):
        design = generate_fpva(2, 2, layers=2, via_cost=2)
        assert design.grid.layers == 2
        assert design.grid.via_cost == 2
        # Valves and pins stay on layer 0.
        assert all(len(v.position) == 2 for v in design.valves)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_fpva(0, 3)
        with pytest.raises(ValueError):
            generate_fpva(2, 2, pitch=1)
        with pytest.raises(ValueError):
            generate_fpva(2, 2, margin=0)


class TestFpvaRouting:
    def test_small_array_routes_completely(self):
        design = generate_fpva(3, 3)
        result = run_pacor(design, PacorConfig())
        assert result.completion_rate == 1.0
        assert result.pins_used == 9
        # Every net is a singleton: one valve per routed net.
        assert all(len(n.valve_ids) == 1 for n in result.nets)

    def test_two_layer_array_routes_completely(self):
        design = generate_fpva(3, 3, layers=2)
        result = run_pacor(design, PacorConfig())
        assert result.completion_rate == 1.0
