"""Tests for the synthetic design generator."""

import pytest

from repro.designs import ClusterPlan, generate_design
from repro.designs.generator import _base_sequences
from repro.valves import cluster_valves


def small_design(seed=7, **overrides):
    params = dict(
        clusters=[ClusterPlan(2), ClusterPlan(3)],
        n_singletons=2,
        n_pins=10,
        n_obstacles=6,
        seed=seed,
    )
    params.update(overrides)
    return generate_design("G", 30, 30, **params)


def test_cluster_plan_validates_size():
    with pytest.raises(ValueError):
        ClusterPlan(1)


def test_base_sequences_pairwise_incompatible():
    seqs = _base_sequences(8, 10)
    assert len(seqs) == 8
    for i, a in enumerate(seqs):
        for b in seqs[i + 1 :]:
            assert not a.compatible(b)


def test_base_sequences_capacity_check():
    with pytest.raises(ValueError):
        _base_sequences(5, 2)


def test_generated_design_validates():
    design = small_design()
    design.validate()


def test_generated_counts():
    design = small_design()
    assert len(design.valves) == 2 + 3 + 2
    assert len(design.lm_groups) == 2
    assert sorted(len(g) for g in design.lm_groups) == [2, 3]
    assert len(design.control_pins) == 10
    assert design.grid.obstacle_count() == 6


def test_determinism():
    a = small_design(seed=11)
    b = small_design(seed=11)
    assert [v.position for v in a.valves] == [v.position for v in b.valves]
    assert a.control_pins == b.control_pins
    assert set(a.grid.obstacle_cells()) == set(b.grid.obstacle_cells())


def test_different_seeds_differ():
    a = small_design(seed=11)
    b = small_design(seed=12)
    assert [v.position for v in a.valves] != [v.position for v in b.valves]


def test_pins_on_boundary_and_free():
    design = small_design()
    for pin in design.control_pins:
        assert design.grid.is_boundary(pin)
        assert design.grid.is_free(pin)


def test_cluster_members_are_colocated():
    design = small_design()
    by_id = design.valve_by_id()
    for group in design.lm_groups:
        positions = [by_id[v].position for v in group]
        for a in positions:
            for b in positions:
                assert a.manhattan(b) <= 4 * (3 * len(group))


def test_clustering_recovers_planned_clusters():
    """The clustering stage must reproduce exactly the planned groups."""
    design = small_design()
    clusters = cluster_valves(design.valves, design.lm_groups)
    multi = [c for c in clusters if c.size >= 2]
    singles = [c for c in clusters if c.size == 1]
    assert len(multi) == 2
    assert len(singles) == 2
    lm_ids = {frozenset(g) for g in design.lm_groups}
    assert {frozenset(c.valve_ids()) for c in multi} == lm_ids


def test_obstacle_margin_keeps_boundary_clear():
    design = small_design(n_obstacles=40)
    for p in design.grid.boundary_cells():
        assert not design.grid.is_obstacle(p)


def test_too_many_pins_rejected():
    with pytest.raises(ValueError):
        generate_design(
            "tiny",
            6,
            6,
            clusters=[],
            n_singletons=1,
            n_pins=100,
            n_obstacles=0,
            seed=1,
        )


class TestLayeredGeneration:
    def test_layers_one_rng_stream_unchanged(self):
        # The layer axis must not perturb the planar RNG stream: a
        # layers=1 call and the historical planar call are the same
        # design, and adding layers keeps the planar content stable.
        planar = small_design()
        explicit = small_design(layers=1)
        assert planar.canonical_hash() == explicit.canonical_hash()
        lifted = small_design(layers=2)
        assert [v.position for v in lifted.valves] == [
            v.position for v in planar.valves
        ]
        assert lifted.control_pins == planar.control_pins

    def test_upper_layer_obstacles_avoid_valve_columns(self):
        design = small_design(layers=2, n_obstacles=20)
        valve_cols = {v.position for v in design.valves}
        for p in design.grid.obstacle_cells():
            if len(p) == 3:
                from repro.geometry import Point

                assert Point(p[0], p[1]) not in valve_cols

    def test_upper_obstacle_fraction_validated(self):
        with pytest.raises(ValueError):
            small_design(layers=2, upper_obstacle_fraction=1.5)


class TestViaFaultScenarios:
    def test_via_faults_on_layered_design(self):
        from repro.designs import generate_fault_scenario

        design = small_design(layers=2)
        fm = generate_fault_scenario(
            design, n_cell_faults=2, n_via_faults=3, seed=11
        )
        assert len(fm.via_stuck) == 3
        valve_cells = {v.position for v in design.valves}
        for site in fm.via_stuck:
            assert site not in valve_cells
            assert design.grid.via_allowed(site)
        fm.validate(design)

    def test_via_faults_rejected_on_planar_design(self):
        from repro.designs import generate_fault_scenario
        from repro.robustness.errors import GenerationError

        with pytest.raises(GenerationError):
            generate_fault_scenario(
                small_design(), n_cell_faults=0, n_via_faults=1, seed=1
            )
