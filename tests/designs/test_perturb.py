"""Tests for design perturbation utilities."""

import pytest

from repro.designs import s3
from repro.designs.perturb import (
    add_obstacle_noise,
    jitter_valves,
    perturbation_family,
)


def test_jitter_returns_valid_independent_copy():
    base = s3()
    jittered = jitter_valves(base, seed=1)
    jittered.validate()
    # Original untouched.
    assert [v.position for v in s3().valves] == [v.position for v in base.valves]
    assert len(jittered.valves) == len(base.valves)
    assert [v.id for v in jittered.valves] == [v.id for v in base.valves]


def test_jitter_moves_some_valves():
    base = s3()
    jittered = jitter_valves(base, seed=1, fraction=1.0)
    moved = sum(
        1
        for a, b in zip(base.valves, jittered.valves)
        if a.position != b.position
    )
    assert moved >= 1


def test_jitter_respects_spacing():
    jittered = jitter_valves(s3(), seed=3, fraction=1.0)
    positions = [v.position for v in jittered.valves]
    for i, a in enumerate(positions):
        for b in positions[i + 1 :]:
            assert a.manhattan(b) >= 2


def test_jitter_zero_shift_is_identity():
    base = s3()
    same = jitter_valves(base, max_shift=0, seed=5)
    assert [v.position for v in same.valves] == [v.position for v in base.valves]


def test_jitter_parameter_validation():
    with pytest.raises(ValueError):
        jitter_valves(s3(), max_shift=-1)
    with pytest.raises(ValueError):
        jitter_valves(s3(), fraction=2.0)


def test_obstacle_noise_adds_exactly_n():
    base = s3()
    noisy = add_obstacle_noise(base, n_cells=12, seed=2)
    assert noisy.grid.obstacle_count() == base.grid.obstacle_count() + 12
    noisy.validate()


def test_obstacle_noise_keeps_margin_to_valves():
    noisy = add_obstacle_noise(s3(), n_cells=20, seed=4, margin=2)
    valve_cells = {v.position for v in noisy.valves}
    for cell in noisy.grid.obstacle_cells():
        assert all(cell.manhattan(v) > 2 for v in valve_cells)


def test_obstacle_noise_validation():
    with pytest.raises(ValueError):
        add_obstacle_noise(s3(), n_cells=-1)


def test_family_is_deterministic_and_distinct():
    a = perturbation_family(s3(), count=3, seed=50)
    b = perturbation_family(s3(), count=3, seed=50)
    for x, y in zip(a, b):
        assert [v.position for v in x.valves] == [v.position for v in y.valves]
    names = [d.name for d in a]
    assert len(set(names)) == 3


def test_perturbed_designs_still_route():
    from repro.core import run_pacor
    from repro.analysis import verify_result

    for variant in perturbation_family(s3(), count=2, seed=60):
        result = run_pacor(variant)
        verify_result(variant, result)
        assert result.completion_rate == 1.0
