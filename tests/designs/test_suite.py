"""Tests for the Table-1 benchmark suite (parameters must match the paper)."""

import pytest

from repro.designs import TABLE1_PARAMETERS, design_by_name, s1, table1_suite
from repro.valves import cluster_valves

EXPECTED_CLUSTERS = {
    "Chip1": 40,
    "Chip2": 22,
    "S1": 2,
    "S2": 2,
    "S3": 5,
    "S4": 7,
    "S5": 13,
}


@pytest.mark.parametrize("name", ["S1", "S2", "S3", "S4", "S5"])
def test_synthetic_design_matches_table1(name):
    design = design_by_name(name)
    params = TABLE1_PARAMETERS[name]
    assert (design.grid.width, design.grid.height) == params["size"]
    assert len(design.valves) == params["n_valves"]
    assert len(design.control_pins) == params["n_pins"]
    assert design.grid.obstacle_count() == params["n_obs"]
    assert design.delta == 1
    design.validate()


@pytest.mark.parametrize("name", ["S1", "S2", "S3", "S4", "S5"])
def test_cluster_counts_match_table2(name):
    design = design_by_name(name)
    clusters = cluster_valves(design.valves, design.lm_groups)
    multi = [c for c in clusters if c.size >= 2]
    assert len(multi) == EXPECTED_CLUSTERS[name]


@pytest.mark.slow
@pytest.mark.parametrize("name", ["Chip1", "Chip2"])
def test_chip_designs_match_table1(name):
    design = design_by_name(name)
    params = TABLE1_PARAMETERS[name]
    assert (design.grid.width, design.grid.height) == params["size"]
    assert len(design.valves) == params["n_valves"]
    assert len(design.control_pins) == params["n_pins"]
    assert design.grid.obstacle_count() == params["n_obs"]
    clusters = cluster_valves(design.valves, design.lm_groups)
    multi = [c for c in clusters if c.size >= 2]
    assert len(multi) == EXPECTED_CLUSTERS[name]
    design.validate()


def test_chip2_has_only_two_valve_clusters():
    design = design_by_name("Chip2")
    assert all(len(g) == 2 for g in design.lm_groups)


def test_unknown_design_name():
    with pytest.raises(ValueError):
        design_by_name("Chip9")


def test_suite_without_chips():
    suite = table1_suite(include_chips=False)
    assert [d.name for d in suite] == ["S1", "S2", "S3", "S4", "S5"]


def test_suite_determinism():
    assert [v.position for v in s1().valves] == [v.position for v in s1().valves]
