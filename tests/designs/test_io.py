"""Tests for design JSON round-tripping."""

import json

import pytest

from repro.designs import (
    design_from_json,
    design_to_json,
    load_design,
    s1,
    save_design,
)
from repro.robustness.errors import DesignFormatError


def test_roundtrip_in_memory():
    design = s1()
    doc = design_to_json(design)
    rebuilt = design_from_json(doc)
    assert rebuilt.name == design.name
    assert rebuilt.grid.width == design.grid.width
    assert rebuilt.grid.height == design.grid.height
    assert set(rebuilt.grid.obstacle_cells()) == set(design.grid.obstacle_cells())
    assert [v.id for v in rebuilt.valves] == [v.id for v in design.valves]
    assert [v.position for v in rebuilt.valves] == [
        v.position for v in design.valves
    ]
    assert [v.sequence for v in rebuilt.valves] == [
        v.sequence for v in design.valves
    ]
    assert rebuilt.lm_groups == design.lm_groups
    assert rebuilt.control_pins == design.control_pins
    assert rebuilt.delta == design.delta


def test_roundtrip_on_disk(tmp_path):
    design = s1()
    path = tmp_path / "s1.json"
    save_design(design, path)
    rebuilt = load_design(path)
    assert rebuilt.name == design.name
    assert len(rebuilt.valves) == len(design.valves)


def test_json_document_is_plain(tmp_path):
    design = s1()
    path = tmp_path / "s1.json"
    save_design(design, path)
    with open(path) as handle:
        doc = json.load(handle)
    assert doc["name"] == "S1"
    assert isinstance(doc["valves"][0]["sequence"], str)
    assert isinstance(doc["obstacles"], list)


def test_from_json_validates():
    doc = design_to_json(s1())
    doc["valves"][0]["x"] = doc["valves"][1]["x"]
    doc["valves"][0]["y"] = doc["valves"][1]["y"]
    with pytest.raises(ValueError):
        design_from_json(doc)


def _mini_doc(**overrides):
    doc = {
        "name": "mini",
        "width": 10,
        "height": 10,
        "valves": [{"id": 0, "x": 2, "y": 2, "sequence": "01"}],
        "control_pins": [[0, 0]],
    }
    doc.update(overrides)
    return doc


@pytest.mark.parametrize(
    "overrides, field",
    [
        ({"valves": [{"id": 0, "x": "three", "y": 4, "sequence": "01"}]}, "valves[0].x"),
        ({"valves": [{"id": 0, "x": 3, "y": 4}]}, "valves[0].sequence"),
        ({"valves": [17]}, "valves[0]"),
        ({"width": -5}, "width/height"),
        ({"obstacles": [[50, 50]]}, "obstacles"),
        ({"name": 7}, "name"),
    ],
)
def test_malformed_documents_name_the_field(overrides, field):
    with pytest.raises(DesignFormatError) as info:
        design_from_json(_mini_doc(**overrides), source="d.json")
    assert info.value.field == field
    assert info.value.path == "d.json"
    assert "d.json" in str(info.value)


def test_missing_required_field_is_diagnosed():
    doc = _mini_doc()
    del doc["width"]
    with pytest.raises(DesignFormatError) as info:
        design_from_json(doc)
    assert info.value.field == "width"


def test_load_design_rejects_invalid_json(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("not json at all")
    with pytest.raises(DesignFormatError) as info:
        load_design(path)
    assert info.value.path == str(path)
    assert "not valid JSON" in str(info.value)


def test_defaults_for_optional_fields():
    doc = {
        "name": "mini",
        "width": 5,
        "height": 5,
        "valves": [{"id": 0, "x": 2, "y": 2, "sequence": "01"}],
    }
    design = design_from_json(doc)
    assert design.lm_groups == []
    assert design.control_pins == []
    assert design.delta == 1
