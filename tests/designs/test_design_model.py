"""Tests for the Design model and its validation."""

import pytest

from repro.designs import Design
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.valves import ActivationSequence, Valve


def valve(vid, x, y, seq="01"):
    return Valve(vid, Point(x, y), ActivationSequence(seq))


def make_design(**overrides):
    grid = RoutingGrid(10, 10)
    base = dict(
        name="T",
        grid=grid,
        valves=[valve(0, 2, 2), valve(1, 5, 5)],
        lm_groups=[[0, 1]],
        control_pins=[Point(0, 0)],
        delta=1,
    )
    base.update(overrides)
    return Design(**base)


def test_valid_design_passes():
    make_design().validate()


def test_duplicate_valve_ids_rejected():
    d = make_design(valves=[valve(0, 2, 2), valve(0, 3, 3)], lm_groups=[])
    with pytest.raises(ValueError, match="duplicate"):
        d.validate()


def test_shared_valve_cell_rejected():
    d = make_design(valves=[valve(0, 2, 2), valve(1, 2, 2)], lm_groups=[])
    with pytest.raises(ValueError, match="share"):
        d.validate()


def test_valve_on_obstacle_rejected():
    d = make_design()
    d.grid.set_obstacle(Point(2, 2))
    with pytest.raises(ValueError, match="obstacle"):
        d.validate()


def test_lm_group_of_one_rejected():
    d = make_design(lm_groups=[[0]])
    with pytest.raises(ValueError, match="two valves"):
        d.validate()


def test_lm_group_unknown_valve_rejected():
    d = make_design(lm_groups=[[0, 99]])
    with pytest.raises(ValueError, match="references"):
        d.validate()


def test_lm_group_overlap_rejected():
    grid = RoutingGrid(10, 10)
    d = make_design(
        grid=grid,
        valves=[valve(0, 2, 2), valve(1, 5, 5), valve(2, 7, 7)],
        lm_groups=[[0, 1], [1, 2]],
    )
    with pytest.raises(ValueError, match="two length-matching"):
        d.validate()


def test_pin_on_obstacle_rejected():
    d = make_design()
    d.grid.set_obstacle(Point(0, 0))
    with pytest.raises(ValueError, match="pin"):
        d.validate()


def test_pin_on_valve_rejected():
    d = make_design(control_pins=[Point(2, 2)])
    with pytest.raises(ValueError, match="coincides"):
        d.validate()


def test_negative_delta_rejected():
    d = make_design(delta=-1)
    with pytest.raises(ValueError, match="delta"):
        d.validate()


def test_stats_and_size_label():
    d = make_design()
    d.grid.set_obstacle(Point(9, 9))
    stats = d.stats()
    assert stats["design"] == "T"
    assert stats["size"] == "10x10"
    assert d.size_label == "10x10"
    assert stats["n_valves"] == 2
    assert stats["n_control_pins"] == 1
    assert stats["n_obstacles"] == 1


def test_valve_by_id():
    d = make_design()
    table = d.valve_by_id()
    assert table[0].position == Point(2, 2)
    assert table[1].position == Point(5, 5)


def test_mixed_sequence_lengths_rejected():
    grid = RoutingGrid(10, 10)
    d = Design(
        name="T",
        grid=grid,
        valves=[
            Valve(0, Point(2, 2), ActivationSequence("01")),
            Valve(1, Point(5, 5), ActivationSequence("011")),
        ],
        control_pins=[Point(0, 0)],
    )
    with pytest.raises(ValueError, match="mixed lengths"):
        d.validate()
