"""Tests for inclusive integer rectangles."""

import pytest

from repro.geometry import Point, Rect


def test_single_cell_rect():
    r = Rect(2, 3, 2, 3)
    assert r.width == 1
    assert r.height == 1
    assert r.area == 1
    assert r.contains(Point(2, 3))
    assert not r.contains(Point(3, 3))


def test_from_points_bounding_box():
    r = Rect.from_points([Point(1, 5), Point(4, 2), Point(3, 3)])
    assert r == Rect(1, 2, 4, 5)


def test_from_points_empty_raises():
    with pytest.raises(ValueError):
        Rect.from_points([])


def test_intersect_overlapping():
    a = Rect(0, 0, 4, 4)
    b = Rect(2, 2, 6, 6)
    assert a.intersect(b) == Rect(2, 2, 4, 4)
    assert a.overlap_area(b) == 9


def test_intersect_disjoint_returns_none():
    a = Rect(0, 0, 1, 1)
    b = Rect(3, 3, 4, 4)
    assert a.intersect(b) is None
    assert a.overlap_area(b) == 0


def test_intersect_touching_edge_counts():
    a = Rect(0, 0, 2, 2)
    b = Rect(2, 0, 4, 2)
    assert a.intersect(b) == Rect(2, 0, 2, 2)
    assert a.overlap_area(b) == 3


def test_inflated():
    assert Rect(1, 1, 2, 2).inflated(1) == Rect(0, 0, 3, 3)


def test_cells_enumeration():
    cells = list(Rect(0, 0, 1, 1).cells())
    assert len(cells) == 4
    assert set(cells) == {Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)}


def test_area_matches_cell_count():
    r = Rect(2, 1, 5, 3)
    assert r.area == len(list(r.cells()))
