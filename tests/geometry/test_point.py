"""Tests for Point and the Manhattan metric."""

import pytest

from repro.geometry import Point, manhattan


def test_manhattan_symmetric():
    a, b = Point(1, 2), Point(4, 6)
    assert a.manhattan(b) == 7
    assert b.manhattan(a) == 7
    assert manhattan(a, b) == 7


def test_manhattan_zero_for_same_point():
    p = Point(3, 3)
    assert p.manhattan(p) == 0


def test_point_is_tuple_like():
    p = Point(2, 5)
    x, y = p
    assert (x, y) == (2, 5)
    assert p == (2, 5)
    assert hash(p) == hash((2, 5))


def test_neighbors4_are_at_distance_one():
    p = Point(0, 0)
    neighbors = list(p.neighbors4())
    assert len(neighbors) == 4
    assert all(p.manhattan(q) == 1 for q in neighbors)
    assert len(set(neighbors)) == 4


def test_translated():
    assert Point(1, 1).translated(2, -3) == Point(3, -2)


def test_manhattan_accepts_plain_tuples():
    assert manhattan((0, 0), (3, 4)) == 7
