"""Tests for tilted rectangle regions in rotated half-unit coordinates."""

import pytest

from repro.geometry import TRR, Point, from_rotated, is_grid_rotated, to_rotated


def test_rotation_roundtrip():
    for p in [Point(0, 0), Point(3, 5), Point(7, 2), Point(1, 1)]:
        u, v = to_rotated(p)
        assert is_grid_rotated(u, v)
        assert from_rotated(u, v) == p


def test_off_grid_rotated_point_rejected():
    # (u, v) = (1, 1) corresponds to a quarter-unit point.
    assert not is_grid_rotated(1, 1)
    with pytest.raises(ValueError):
        from_rotated(1, 1)


def test_manhattan_becomes_chebyshev():
    a, b = Point(1, 2), Point(5, 3)
    ua, va = to_rotated(a)
    ub, vb = to_rotated(b)
    # Half units are doubled, so Chebyshev distance is 2x Manhattan.
    assert max(abs(ua - ub), abs(va - vb)) == 2 * a.manhattan(b)


def test_point_region_distance():
    ta = TRR.from_point(Point(0, 0))
    tb = TRR.from_point(Point(3, 4))
    assert ta.distance(tb) == 2 * 7  # half units
    assert ta.distance(ta) == 0


def test_expand_and_intersect_is_merging_segment():
    # Classic DME merge: two sinks at Manhattan distance 4 merge with
    # radii 2 + 2; the merging segment must be equidistant from both.
    a, b = Point(0, 0), Point(4, 0)
    ta, tb = TRR.from_point(a), TRR.from_point(b)
    dist = ta.distance(tb)
    assert dist == 8
    ms = ta.expanded(dist // 2).intersect(tb.expanded(dist // 2))
    assert ms is not None
    points = list(ms.grid_points())
    assert points, "merging segment contains on-grid points"
    for p in points:
        assert p.manhattan(a) == 2
        assert p.manhattan(b) == 2


def test_expanded_negative_radius_rejected():
    with pytest.raises(ValueError):
        TRR.from_point(Point(0, 0)).expanded(-1)


def test_disjoint_intersection_is_none():
    ta = TRR.from_point(Point(0, 0))
    tb = TRR.from_point(Point(9, 9))
    assert ta.intersect(tb) is None


def test_grid_points_of_ball():
    # Manhattan ball of radius 1 around (5, 5): centre + 4 neighbours.
    ball = TRR.from_point(Point(5, 5)).expanded(2)
    points = set(ball.grid_points())
    assert points == {
        Point(5, 5),
        Point(4, 5),
        Point(6, 5),
        Point(5, 4),
        Point(5, 6),
    }


def test_nearest_grid_point_inside_region():
    ball = TRR.from_point(Point(5, 5)).expanded(4)
    p, snap = ball.nearest_grid_point(Point(5, 5))
    assert p == Point(5, 5)
    assert snap == 0


def test_nearest_grid_point_snaps_off_grid_segment():
    # Sinks at odd distance: merging segment is off-grid (Lemma 1).
    a, b = Point(0, 0), Point(3, 0)
    ta, tb = TRR.from_point(a), TRR.from_point(b)
    dist = ta.distance(tb)
    assert dist == 6  # odd Manhattan distance 3
    ms = ta.expanded(3).intersect(tb.expanded(3))
    assert ms is not None
    assert not list(ms.grid_points())  # truly off-grid
    p, snap = ms.nearest_grid_point(Point(0, 0))
    assert snap > 0
    # Snapped point is within one unit of perfectly balanced.
    assert abs(p.manhattan(a) - p.manhattan(b)) <= 1


def test_sample_grid_points_spread_and_unique():
    a, b = Point(0, 0), Point(8, 0)
    ms = TRR.from_point(a).expanded(8).intersect(TRR.from_point(b).expanded(8))
    samples = ms.sample_grid_points(limit=8)
    assert samples
    assert len(samples) == len(set(samples))
    for p in samples:
        assert p.manhattan(a) == 4
        assert p.manhattan(b) == 4


def test_nearest_rotated_clamps():
    t = TRR(0, 4, 0, 4)
    assert t.nearest_rotated(10, -3) == (4, 0)
    assert t.nearest_rotated(2, 2) == (2, 2)
