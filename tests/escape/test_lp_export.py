"""Tests for the LP export of the Section-5 formulation."""

import re

import pytest

from repro.escape import EscapeSource, solve_escape
from repro.escape.lp_export import export_escape_lp, write_escape_lp
from repro.geometry import Point
from repro.grid import RoutingGrid


@pytest.fixture
def small_instance():
    grid = RoutingGrid(6, 6)
    grid.set_obstacle(Point(3, 3))
    sources = [EscapeSource(1, (Point(2, 2),)), EscapeSource(2, (Point(4, 4),))]
    pins = [Point(0, 0), Point(5, 5), Point(0, 5)]
    return grid, sources, pins


def test_structure(small_instance):
    grid, sources, pins = small_instance
    lp = export_escape_lp(grid, sources, pins)
    assert lp.startswith("\\ Escape routing LP")
    assert "Minimize" in lp
    assert "Subject To" in lp
    assert "Bounds" in lp
    assert lp.rstrip().endswith("End")


def test_one_source_constraint_per_cluster(small_instance):
    grid, sources, pins = small_instance
    lp = export_escape_lp(grid, sources, pins)
    assert " c6_1:" in lp
    assert " c6_2:" in lp
    assert "xs_1" in lp and "xs_2" in lp


def test_objective_rewards_routing(small_instance):
    grid, sources, pins = small_instance
    lp = export_escape_lp(grid, sources, pins, beta=5000.0)
    obj = lp.split("Subject To")[0]
    assert "- 5000.0 xs_1" in obj
    assert "- 5000.0 xs_2" in obj


def test_obstacle_cells_absent(small_instance):
    grid, sources, pins = small_instance
    lp = export_escape_lp(grid, sources, pins)
    assert "f_3_3_" not in lp
    assert "_3_3 " not in lp.replace("c12_3_3", "").replace("c9_3_3", "")


def test_conservation_rows_cover_non_pin_cells(small_instance):
    grid, sources, pins = small_instance
    lp = export_escape_lp(grid, sources, pins)
    # Pins have no conservation row.
    assert " c9_0_0:" not in lp
    assert " c9_5_5:" not in lp
    # An ordinary interior cell does.
    assert " c9_1_1:" in lp


def test_capacity_rows_bound_two(small_instance):
    grid, sources, pins = small_instance
    lp = export_escape_lp(grid, sources, pins)
    rows = [l for l in lp.splitlines() if l.startswith(" c12_")]
    assert rows
    assert all(row.endswith("<= 2") for row in rows)


def test_variables_are_bounded_unit(small_instance):
    grid, sources, pins = small_instance
    lp = export_escape_lp(grid, sources, pins)
    bounds = lp.split("Bounds")[1]
    assert " 0 <= xs_1 <= 1" in bounds
    assert re.search(r" 0 <= f_\d+_\d+_\d+_\d+ <= 1", bounds)


def test_write_to_disk(tmp_path, small_instance):
    grid, sources, pins = small_instance
    path = tmp_path / "escape.lp"
    write_escape_lp(str(path), grid, sources, pins)
    text = path.read_text()
    assert text.startswith("\\ Escape routing LP")


def test_our_solution_is_lp_feasible(small_instance):
    """The min-cost-flow solution satisfies every exported constraint.

    We parse the LP's c6/c9/c12 rows and evaluate them under the arc
    flows induced by our solver's decomposed paths — a full circle check
    that the substitution solves the paper's model.
    """
    grid, sources, pins = small_instance
    blocked = {Point(2, 2), Point(4, 4)}
    result = solve_escape(grid, sources, pins, blocked)
    assert result.complete

    # Induced variable assignment.
    values = {}
    for cid, path in result.paths.items():
        cells = path.cells
        first_free = cells[1] if cells[0] in blocked else cells[0]
        values[f"e_{cid}_{first_free.x}_{first_free.y}"] = 1
        values[f"xs_{cid}"] = 1
        start = 1 if cells[0] in blocked else 0
        for a, b in zip(cells[start:], cells[start + 1 :]):
            values[f"f_{a.x}_{a.y}_{b.x}_{b.y}"] = 1

    lp = export_escape_lp(grid, sources, pins, blocked)
    for line in lp.splitlines():
        line = line.strip()
        match = re.match(r"^(c\d+[\w]*): (.*) (<=|=) (-?\d+)$", line)
        if not match:
            continue
        _, expr, op, rhs = match.groups()
        total = 0
        for sign, var in re.findall(r"([+-]?)\s*([A-Za-z_][\w]*)", expr):
            coeff = -1 if sign == "-" else 1
            total += coeff * values.get(var, 0)
        if op == "=":
            assert total == int(rhs), line
        else:
            assert total <= int(rhs), line
