"""Tests that our escape solutions satisfy the paper's constraints (6)-(12)."""

import random

import pytest

from repro.escape import EscapeSource, solve_escape, solve_escape_sequential
from repro.escape.constraints import ConstraintViolation, check_paper_constraints
from repro.escape.mcf import EscapeResult
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.routing import Path


def test_simple_instance_satisfies_constraints(grid10):
    source = EscapeSource(1, (Point(5, 5),))
    pins = [Point(0, 5), Point(9, 5)]
    result = solve_escape(grid10, [source], pins)
    stats = check_paper_constraints(grid10, [source], pins, set(), result)
    assert stats["routed"] == 1
    assert stats["arcs"] == result.paths[1].length


def test_multi_source_instance(grid10):
    sources = [EscapeSource(i, (Point(3 + i, 4),)) for i in range(4)]
    pins = [Point(x, 9) for x in (1, 3, 6, 8)]
    blocked = {Point(3 + i, 4) for i in range(4)}
    result = solve_escape(grid10, sources, pins, blocked)
    check_paper_constraints(grid10, sources, pins, blocked, result)


def test_random_instances_always_legal():
    rng = random.Random(17)
    for trial in range(8):
        grid = RoutingGrid(18, 18)
        for _ in range(rng.randrange(0, 15)):
            grid.set_obstacle(
                Point(rng.randrange(2, 16), rng.randrange(2, 16))
            )
        taps = set()
        while len(taps) < 4:
            p = Point(rng.randrange(3, 15), rng.randrange(3, 15))
            if grid.is_free(p):
                taps.add(p)
        sources = [EscapeSource(i, (t,)) for i, t in enumerate(sorted(taps))]
        pins = [Point(x, 0) for x in range(1, 18, 3)]
        result = solve_escape(grid, sources, pins)
        check_paper_constraints(grid, sources, pins, set(), result)


def test_sequential_solutions_also_legal(grid10):
    sources = [EscapeSource(i, (Point(3 + i, 4),)) for i in range(3)]
    pins = [Point(x, 9) for x in (1, 4, 8)]
    blocked = {Point(3 + i, 4) for i in range(3)}
    result = solve_escape_sequential(grid10, sources, pins, blocked)
    check_paper_constraints(grid10, sources, pins, blocked, result)


class TestViolationsDetected:
    def _base(self, grid10):
        source = EscapeSource(1, (Point(5, 5),))
        pins = [Point(9, 5)]
        result = solve_escape(grid10, [source], pins)
        return source, pins, result

    def test_crossing_paths_detected(self, grid10):
        # Two fabricated paths sharing a cell: cell carries 4 units.
        sources = [
            EscapeSource(1, (Point(0, 5),)),
            EscapeSource(2, (Point(5, 0),)),
        ]
        pins = [Point(9, 5), Point(5, 9)]
        fake = EscapeResult()
        fake.paths[1] = Path([Point(x, 5) for x in range(10)])
        fake.pin_of[1] = Point(9, 5)
        fake.paths[2] = Path([Point(5, y) for y in range(10)])
        fake.pin_of[2] = Point(5, 9)
        with pytest.raises(ConstraintViolation, match="incident"):
            check_paper_constraints(grid10, sources, pins, set(), fake)

    def test_off_pin_termination_detected(self, grid10):
        source = EscapeSource(1, (Point(0, 5),))
        fake = EscapeResult()
        fake.paths[1] = Path([Point(x, 5) for x in range(4)])
        fake.pin_of[1] = Point(3, 5)
        with pytest.raises(ConstraintViolation, match="off-pin"):
            check_paper_constraints(grid10, [source], [Point(9, 5)], set(), fake)

    def test_obstacle_crossing_detected(self, grid10):
        grid10.set_obstacle(Point(4, 5))
        source = EscapeSource(1, (Point(0, 5),))
        fake = EscapeResult()
        fake.paths[1] = Path([Point(x, 5) for x in range(10)])
        fake.pin_of[1] = Point(9, 5)
        with pytest.raises(ConstraintViolation, match="obstacle"):
            check_paper_constraints(grid10, [source], [Point(9, 5)], set(), fake)

    def test_wrong_start_detected(self, grid10):
        source = EscapeSource(1, (Point(0, 0),))
        fake = EscapeResult()
        fake.paths[1] = Path([Point(x, 5) for x in range(10)])
        fake.pin_of[1] = Point(9, 5)
        with pytest.raises(ConstraintViolation, match="tap"):
            check_paper_constraints(grid10, [source], [Point(9, 5)], set(), fake)

    def test_inflow_into_tap_detected(self, grid10):
        # A path that loops back adjacent *into* another source's tap.
        sources = [
            EscapeSource(1, (Point(0, 5),)),
            EscapeSource(2, (Point(3, 5),)),
        ]
        fake = EscapeResult()
        # Path of source 1 walks right through source 2's tap cell.
        fake.paths[1] = Path([Point(x, 5) for x in range(10)])
        fake.pin_of[1] = Point(9, 5)
        with pytest.raises(ConstraintViolation, match="tap"):
            check_paper_constraints(
                grid10, sources, [Point(9, 5)], set(), fake
            )
