"""Tests for the sequential escape baseline and its comparison to MCF."""

import pytest

from repro.escape import EscapeSource, solve_escape, solve_escape_sequential
from repro.geometry import Point
from repro.grid import RoutingGrid


def test_empty_sources(grid10):
    result = solve_escape_sequential(grid10, [], [Point(0, 0)])
    assert result.complete


def test_single_source_routes_like_mcf(grid10):
    source = EscapeSource(1, (Point(5, 5),))
    pins = [Point(0, 5), Point(9, 5)]
    sequential = solve_escape_sequential(grid10, [source], pins)
    flow = solve_escape(grid10, [source], pins)
    assert sequential.complete and flow.complete
    assert sequential.paths[1].length == flow.paths[1].length


def test_blocked_tap_prepends_tap_cell(grid10):
    channel = [Point(x, 5) for x in range(3, 7)]
    source = EscapeSource(2, tuple(channel))
    result = solve_escape_sequential(
        grid10, [source], [Point(0, 0)], blocked=set(channel)
    )
    assert result.complete
    path = result.paths[2]
    assert path.source in channel
    assert path.cells[1] not in channel


def test_pins_not_reused(grid10):
    sources = [
        EscapeSource(1, (Point(2, 5),)),
        EscapeSource(2, (Point(7, 5),)),
    ]
    pins = [Point(0, 5), Point(9, 5)]
    result = solve_escape_sequential(grid10, sources, pins)
    assert result.complete
    assert result.pin_of[1] != result.pin_of[2]


def test_later_sources_blocked_by_earlier_paths(grid10):
    # First source's straight path cuts the grid; the second must detour
    # or fail — either way its path never crosses the first.
    sources = [
        EscapeSource(1, (Point(5, 1),)),
        EscapeSource(2, (Point(5, 8),)),
    ]
    pins = [Point(0, 4), Point(9, 4)]
    result = solve_escape_sequential(grid10, sources, pins)
    if result.complete:
        cells_1 = set(result.paths[1].cells)
        cells_2 = set(result.paths[2].cells)
        assert not cells_1 & cells_2


def test_ordering_matters_where_flow_does_not():
    """The classic failure: greedy steals the corridor MCF would share."""
    grid = RoutingGrid(7, 5)
    for x in range(7):
        if x not in (1, 5):
            grid.set_obstacle(Point(x, 2))
    sources = [
        EscapeSource(1, (Point(1, 1),)),
        EscapeSource(2, (Point(2, 1),)),
    ]
    pins = [Point(1, 4), Point(5, 4)]
    blocked = {Point(1, 1), Point(2, 1)}
    flow = solve_escape(grid, sources, pins, blocked)
    assert flow.complete  # the global formulation always finds the split
    sequential = solve_escape_sequential(grid, sources, pins, blocked)
    # Greedy may or may not complete, but never beats the flow's cost.
    if sequential.complete:
        assert sequential.total_cost >= flow.total_cost


def test_near_order_heuristic(grid10):
    sources = [
        EscapeSource(1, (Point(5, 5),)),
        EscapeSource(2, (Point(1, 1),)),
    ]
    pins = [Point(0, 0), Point(9, 9)]
    result = solve_escape_sequential(grid10, sources, pins, order="near")
    assert result.complete


def test_unknown_order_rejected(grid10):
    with pytest.raises(ValueError):
        solve_escape_sequential(
            grid10, [EscapeSource(1, (Point(5, 5),))], [Point(0, 0)], order="bogus"
        )


def test_cost_equals_sum_of_lengths(grid10):
    sources = [
        EscapeSource(1, (Point(2, 2),)),
        EscapeSource(2, (Point(7, 7),)),
    ]
    pins = [Point(0, 0), Point(9, 9)]
    result = solve_escape_sequential(grid10, sources, pins)
    assert result.total_cost == sum(p.length for p in result.paths.values())


def test_mcf_never_worse_on_random_instances():
    import random

    rng = random.Random(3)
    for _ in range(5):
        grid = RoutingGrid(20, 20)
        cells = [Point(rng.randrange(4, 16), rng.randrange(4, 16)) for _ in range(4)]
        cells = list(dict.fromkeys(cells))
        sources = [EscapeSource(i, (c,)) for i, c in enumerate(cells)]
        pins = [Point(x, 0) for x in range(1, 20, 3)]
        flow = solve_escape(grid, sources, pins)
        sequential = solve_escape_sequential(grid, sources, pins)
        assert flow.flow_value >= sequential.flow_value
        if flow.flow_value == sequential.flow_value:
            assert flow.total_cost <= sequential.total_cost + 1e-9
