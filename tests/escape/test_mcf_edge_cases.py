"""Edge-case tests for the escape-routing network builder."""

import pytest

from repro.escape import EscapeSource, solve_escape
from repro.geometry import Point
from repro.grid import RoutingGrid


def test_tap_with_no_free_neighbors_unrouted():
    grid = RoutingGrid(7, 7)
    # Tap boxed in by obstacles.
    for q in Point(3, 3).neighbors4():
        grid.set_obstacle(q)
    source = EscapeSource(1, (Point(3, 3),))
    result = solve_escape(grid, [source], [Point(0, 0)], blocked={Point(3, 3)})
    assert result.unrouted == [1]


def test_pin_equal_to_tap_neighbor():
    grid = RoutingGrid(5, 5)
    source = EscapeSource(1, (Point(1, 0),))
    result = solve_escape(grid, [source], [Point(0, 0)], blocked={Point(1, 0)})
    assert result.complete
    assert result.paths[1].length == 1  # tap -> pin directly


def test_free_tap_on_pin_cell():
    """A singleton valve adjacent to its own pin routes with length 1."""
    grid = RoutingGrid(5, 5)
    source = EscapeSource(1, (Point(0, 1),))
    result = solve_escape(grid, [source], [Point(0, 0)])
    assert result.complete
    assert result.paths[1].cells == (Point(0, 1), Point(0, 0))


def test_obstructed_pins_ignored():
    grid = RoutingGrid(6, 6)
    grid.set_obstacle(Point(0, 0))
    source = EscapeSource(1, (Point(3, 3),))
    result = solve_escape(grid, [source], [Point(0, 0), Point(5, 5)])
    assert result.complete
    assert result.pin_of[1] == Point(5, 5)


def test_many_taps_single_entry_per_cell():
    """Duplicate tap-adjacent entries collapse to one arc per cell."""
    grid = RoutingGrid(8, 8)
    taps = (Point(3, 3), Point(3, 4))  # share the neighbour (3, 3±1) side
    source = EscapeSource(1, taps)
    result = solve_escape(grid, [source], [Point(0, 0)], blocked=set(taps))
    assert result.complete
    path = result.paths[1]
    assert path.source in taps


def test_crowded_pins_one_per_cluster():
    grid = RoutingGrid(9, 9)
    sources = [EscapeSource(i, (Point(2 + i, 4),)) for i in range(4)]
    pins = [Point(x, 0) for x in range(9)]
    result = solve_escape(
        grid, sources, pins, blocked={Point(2 + i, 4) for i in range(4)}
    )
    assert result.complete
    assert len(set(result.pin_of.values())) == 4


def test_flow_value_matches_paths():
    grid = RoutingGrid(9, 9)
    sources = [EscapeSource(i, (Point(2 + 2 * i, 4),)) for i in range(3)]
    pins = [Point(0, 0)]
    result = solve_escape(grid, sources, pins)
    assert result.flow_value == len(result.paths) == 1
    assert len(result.unrouted) == 2
