"""Tests for blocking-net diagnosis."""

import pytest

from repro.escape import find_blocking_nets
from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid


def ring_occupancy(grid, net):
    """Occupy a ring around the centre with `net`."""
    occupancy = Occupancy(grid)
    ring = [Point(3, y) for y in range(3, 7)] + [Point(6, y) for y in range(3, 7)]
    ring += [Point(x, 3) for x in range(4, 6)] + [Point(x, 6) for x in range(4, 6)]
    occupancy.occupy(ring, net)
    return occupancy


def test_unblocked_source_returns_empty_set(grid10):
    occupancy = Occupancy(grid10)
    result = find_blocking_nets(
        grid10, occupancy, [Point(5, 5)], [Point(0, 0)], rippable=set()
    )
    assert result is not None
    assert result.nets == set()
    assert result.length == 10  # Manhattan distance


def test_walled_in_by_rippable_net(grid10):
    occupancy = ring_occupancy(grid10, net=7)
    result = find_blocking_nets(
        grid10, occupancy, [Point(4, 4)], [Point(0, 0)], rippable={7}
    )
    assert result is not None
    assert result.nets == {7}
    assert 7 in result.crossed_cells
    assert result.crossed_cells[7]


def test_walled_in_by_protected_net_returns_none(grid10):
    occupancy = ring_occupancy(grid10, net=7)
    result = find_blocking_nets(
        grid10, occupancy, [Point(4, 4)], [Point(0, 0)], rippable=set()
    )
    assert result is None


def test_prefers_cheaper_blocking_net(grid10):
    """With two concentric walls on one side and a single wall on the
    other, the probe should cross the single wall."""
    occupancy = Occupancy(grid10)
    # Wall of net 1 to the left of the source, wall of net 2 to the right;
    # pins on both sides.
    occupancy.occupy([Point(2, y) for y in range(10)], net=1)
    occupancy.occupy([Point(7, y) for y in range(10)], net=2)
    occupancy.occupy([Point(8, y) for y in range(10)], net=3)
    result = find_blocking_nets(
        grid10,
        occupancy,
        [Point(5, 5)],
        [Point(0, 5), Point(9, 5)],
        rippable={1, 2, 3},
    )
    assert result is not None
    assert result.nets == {1}  # one crossing beats two


def test_rip_cost_weights_choice(grid10):
    """A high rip cost (e.g. an LM cluster) diverts the probe."""
    occupancy = Occupancy(grid10)
    occupancy.occupy([Point(2, y) for y in range(10)], net=1)  # LM wall
    occupancy.occupy([Point(7, y) for y in range(10)], net=2)  # ordinary
    result = find_blocking_nets(
        grid10,
        occupancy,
        [Point(5, 5)],
        [Point(0, 5), Point(9, 5)],
        rippable={1, 2},
        rip_cost={1: 10.0, 2: 1.0},
    )
    assert result is not None
    assert result.nets == {2}


def test_no_pins_returns_none(grid10):
    occupancy = Occupancy(grid10)
    assert (
        find_blocking_nets(grid10, occupancy, [Point(5, 5)], [], rippable=set())
        is None
    )


def test_obstacles_block_probe(grid10):
    occupancy = Occupancy(grid10)
    for y in range(10):
        grid10.set_obstacle(Point(5, y))
    result = find_blocking_nets(
        grid10, occupancy, [Point(7, 5)], [Point(0, 5)], rippable=set()
    )
    assert result is None
