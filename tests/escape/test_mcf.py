"""Tests for min-cost-flow escape routing."""

import pytest

from repro.escape import EscapeSource, solve_escape
from repro.geometry import Point
from repro.grid import RoutingGrid


def test_source_requires_tap_cells():
    with pytest.raises(ValueError):
        EscapeSource(0, ())


def test_no_sources_trivially_complete(grid10):
    result = solve_escape(grid10, [], [Point(0, 0)])
    assert result.complete
    assert result.flow_value == 0


def test_no_pins_routes_nothing(grid10):
    source = EscapeSource(1, (Point(5, 5),))
    result = solve_escape(grid10, [source], [])
    assert result.unrouted == [1]


def test_singleton_valve_routes_to_nearest_pin(grid10):
    # Valve at (5, 5); pins on the left and right edges.
    source = EscapeSource(1, (Point(5, 5),))
    pins = [Point(0, 5), Point(9, 5)]
    result = solve_escape(grid10, [source], pins)
    assert result.complete
    path = result.paths[1]
    assert path.source == Point(5, 5)
    assert path.target in pins
    assert path.length == 4  # (9,5) is nearer
    assert result.pin_of[1] == Point(9, 5)


def test_tap_cell_blocked_cluster_channel(grid10):
    # A routed cluster channel occupies a row; escape must start on a
    # free neighbour of the tap and include the tap as the first cell.
    channel = [Point(x, 5) for x in range(3, 7)]
    source = EscapeSource(2, tuple(channel))
    result = solve_escape(grid10, [source], [Point(0, 0)], blocked=set(channel))
    assert result.complete
    path = result.paths[2]
    assert path.source in channel
    assert path.cells[1] not in channel
    assert path.target == Point(0, 0)


def test_two_sources_get_distinct_pins(grid10):
    sources = [
        EscapeSource(1, (Point(2, 5),)),
        EscapeSource(2, (Point(7, 5),)),
    ]
    pins = [Point(0, 5), Point(9, 5)]
    result = solve_escape(grid10, sources, pins)
    assert result.complete
    assert result.pin_of[1] != result.pin_of[2]
    cells_1 = set(result.paths[1].cells)
    cells_2 = set(result.paths[2].cells)
    assert not cells_1 & cells_2


def test_paths_never_cross(grid10):
    # Four sources racing to four pins through the middle.
    sources = [EscapeSource(i, (Point(3 + i, 4),)) for i in range(4)]
    pins = [Point(x, 9) for x in (1, 3, 6, 8)]
    result = solve_escape(
        grid10, sources, pins, blocked={Point(3 + i, 4) for i in range(4)}
    )
    assert result.complete
    all_cells = []
    for path in result.paths.values():
        all_cells.extend(path.cells[1:])  # taps excluded (they're blocked)
    assert len(all_cells) == len(set(all_cells))


def test_flow_maximises_routed_count_over_length():
    """One source must take a long detour so the other can route at all."""
    grid = RoutingGrid(7, 5)
    # Corridor: wall except two gaps.
    for x in range(7):
        if x not in (1, 5):
            grid.set_obstacle(Point(x, 2))
    sources = [
        EscapeSource(1, (Point(1, 1),)),
        EscapeSource(2, (Point(2, 1),)),
    ]
    pins = [Point(1, 4), Point(5, 4)]
    result = solve_escape(grid, sources, pins, blocked={Point(1, 1), Point(2, 1)})
    assert result.complete
    assert result.pin_of[1] != result.pin_of[2]


def test_unroutable_source_reported():
    grid = RoutingGrid(9, 9)
    # Box in the source completely.
    walls = [Point(3, y) for y in range(3, 7)] + [Point(6, y) for y in range(3, 7)]
    walls += [Point(x, 3) for x in range(3, 7)] + [Point(x, 6) for x in range(3, 7)]
    grid.add_obstacles(walls)
    inner = EscapeSource(1, (Point(4, 4),))
    outer = EscapeSource(2, (Point(1, 1),))
    result = solve_escape(grid, [inner, outer], [Point(8, 8), Point(0, 8)])
    assert result.unrouted == [1]
    assert 2 in result.paths


def test_total_cost_equals_sum_of_lengths(grid10):
    sources = [
        EscapeSource(1, (Point(2, 2),)),
        EscapeSource(2, (Point(7, 7),)),
    ]
    pins = [Point(0, 0), Point(9, 9)]
    result = solve_escape(grid10, sources, pins)
    assert result.complete
    assert result.total_cost == sum(p.length for p in result.paths.values())


def test_more_sources_than_pins(grid10):
    sources = [EscapeSource(i, (Point(2 + 2 * i, 5),)) for i in range(3)]
    pins = [Point(0, 0), Point(9, 9)]
    result = solve_escape(grid10, sources, pins)
    assert result.flow_value == 2
    assert len(result.unrouted) == 1


def test_blocked_cells_not_traversed(grid10):
    blocked = {Point(x, 3) for x in range(10) if x != 9}
    source = EscapeSource(1, (Point(5, 5),))
    result = solve_escape(grid10, [source], [Point(5, 0)], blocked=blocked)
    assert result.complete
    assert all(c not in blocked for c in result.paths[1].cells)


def test_duplicate_pins_collapse(grid10):
    source = EscapeSource(1, (Point(5, 5),))
    result = solve_escape(grid10, [source], [Point(0, 5), Point(0, 5)])
    assert result.complete
