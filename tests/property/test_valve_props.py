"""Property-based tests for activation sequences and clustering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point
from repro.valves import ActivationSequence, Valve, greedy_clique_partition
from repro.valves.compatibility import pairwise_compatible

statuses = st.sampled_from("01X")
sequences = st.text(alphabet="01X", min_size=1, max_size=12).map(ActivationSequence)
fixed_sequences = st.text(alphabet="01X", min_size=6, max_size=6).map(
    ActivationSequence
)


@given(sequences, sequences)
def test_compatibility_symmetric(a, b):
    assert a.compatible(b) == b.compatible(a)


@given(sequences)
def test_compatibility_reflexive(a):
    assert a.compatible(a)


@given(fixed_sequences, fixed_sequences)
def test_merge_commutative_when_compatible(a, b):
    if a.compatible(b):
        assert a.merge(b) == b.merge(a)


@given(fixed_sequences, fixed_sequences)
def test_merge_absorbs_dont_cares(a, b):
    if a.compatible(b):
        merged = a.merge(b)
        assert merged.compatible(a)
        assert merged.compatible(b)
        # The merge is at least as constrained as both inputs.
        assert merged.steps.count("X") <= a.steps.count("X")
        assert merged.steps.count("X") <= b.steps.count("X")


@given(fixed_sequences, fixed_sequences, fixed_sequences)
def test_merge_signature_is_exact(a, b, probe):
    """probe is compatible with merge(a, b) iff compatible with both."""
    if not a.compatible(b):
        return
    merged = a.merge(b)
    assert merged.compatible(probe) == (a.compatible(probe) and b.compatible(probe))


@given(st.lists(fixed_sequences, min_size=1, max_size=15))
def test_greedy_partition_covers_with_true_cliques(seqs):
    valves = [Valve(i, Point(i, 0), s) for i, s in enumerate(seqs)]
    groups = greedy_clique_partition(valves)
    covered = sorted(v.id for g in groups for v in g)
    assert covered == list(range(len(valves)))
    for group in groups:
        assert pairwise_compatible(group)


@given(st.lists(fixed_sequences, min_size=2, max_size=12))
def test_greedy_partition_not_worse_than_singletons(seqs):
    valves = [Valve(i, Point(i, 0), s) for i, s in enumerate(seqs)]
    groups = greedy_clique_partition(valves)
    assert len(groups) <= len(valves)
    # If any two valves are compatible, greedy must do better than all-singletons.
    if any(
        valves[i].compatible(valves[j])
        for i in range(len(valves))
        for j in range(i + 1, len(valves))
    ):
        assert len(groups) < len(valves)
