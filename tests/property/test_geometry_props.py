"""Property-based tests for geometry invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import TRR, Point, Rect, from_rotated, is_grid_rotated, to_rotated

coords = st.integers(min_value=-200, max_value=200)
points = st.builds(Point, coords, coords)
small_radius = st.integers(min_value=0, max_value=40)


@given(points, points)
def test_manhattan_symmetry_and_triangle(a, b):
    assert a.manhattan(b) == b.manhattan(a)
    assert a.manhattan(b) >= 0
    assert (a.manhattan(b) == 0) == (a == b)


@given(points, points, points)
def test_manhattan_triangle_inequality(a, b, c):
    assert a.manhattan(c) <= a.manhattan(b) + b.manhattan(c)


@given(points)
def test_rotation_roundtrip(p):
    u, v = to_rotated(p)
    assert is_grid_rotated(u, v)
    assert from_rotated(u, v) == p


@given(points, points)
def test_rotated_chebyshev_equals_doubled_manhattan(a, b):
    ua, va = to_rotated(a)
    ub, vb = to_rotated(b)
    assert max(abs(ua - ub), abs(va - vb)) == 2 * a.manhattan(b)


@given(points, points)
def test_trr_distance_matches_point_distance(a, b):
    ta, tb = TRR.from_point(a), TRR.from_point(b)
    assert ta.distance(tb) == 2 * a.manhattan(b)
    assert tb.distance(ta) == ta.distance(tb)


@given(points, small_radius)
def test_ball_contains_exactly_manhattan_disk(center, radius):
    ball = TRR.from_point(center).expanded(2 * radius)
    inside = set(ball.grid_points())
    for p in inside:
        assert center.manhattan(p) <= radius
    # The extreme points of the disk are present.
    assert center.translated(radius, 0) in inside
    assert center.translated(-radius, 0) in inside


@given(points, points)
def test_merging_segment_is_equidistant(a, b):
    """The DME merge of two sinks balances distances within rounding."""
    ta, tb = TRR.from_point(a), TRR.from_point(b)
    dist = ta.distance(tb)
    ea = dist // 2
    eb = dist - ea
    region = ta.expanded(ea).intersect(tb.expanded(eb))
    assert region is not None
    for p in list(region.grid_points())[:20]:
        da, db = p.manhattan(a), p.manhattan(b)
        # Each distance is within half a unit of the target radius.
        assert abs(2 * da - ea) <= 1
        assert abs(2 * db - eb) <= 1


@given(points, small_radius, small_radius)
def test_expansion_is_monotone(p, r1, r2):
    lo, hi = sorted((r1, r2))
    small = TRR.from_point(p).expanded(lo)
    big = TRR.from_point(p).expanded(hi)
    assert big.intersect(small) == small


@given(
    st.integers(0, 50), st.integers(0, 50), st.integers(0, 50), st.integers(0, 50)
)
def test_rect_intersection_commutative(x1, y1, x2, y2):
    a = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    b = Rect(min(y1, x2), min(x1, y2), max(y1, x2), max(x1, y2))
    assert a.intersect(b) == b.intersect(a)
    assert a.overlap_area(b) == b.overlap_area(a)


@given(st.lists(points, min_size=1, max_size=20))
def test_bounding_box_contains_all(pts):
    box = Rect.from_points(pts)
    assert all(box.contains(p) for p in pts)
    assert box.area >= len(set(pts))
