"""Property-based tests for DME merging, bounded skew, and selection."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dme import (
    balanced_bipartition_topology,
    compute_merging_regions,
    compute_merging_regions_bounded,
    generate_candidates,
)
from repro.geometry import Point
from repro.grid import RoutingGrid

sink_sets = st.sets(
    st.builds(Point, st.integers(1, 28), st.integers(1, 28)),
    min_size=2,
    max_size=6,
)


def sink_depths(node):
    if node.is_leaf():
        return [0]
    out = []
    for child in node.children:
        out.extend(d + child.edge_h for d in sink_depths(child))
    return out


@given(sink_sets)
@settings(max_examples=50, deadline=None)
def test_zero_skew_merging_balances_within_rounding(points):
    points = sorted(points)
    root = balanced_bipartition_topology(points)
    compute_merging_regions(root)
    depths = sink_depths(root)
    # One half unit of rounding per merge level at most.
    assert max(depths) - min(depths) <= 2 * len(points)
    assert root.delay_h == max(depths)


@given(sink_sets, st.integers(0, 8))
@settings(max_examples=50, deadline=None)
def test_bounded_skew_respects_budget(points, skew_h):
    points = sorted(points)
    root = balanced_bipartition_topology(points)
    compute_merging_regions_bounded(root, skew_h)
    depths = sink_depths(root)
    assert max(depths) - min(depths) <= max(skew_h, 2 * len(points))
    if skew_h == 0:
        assert max(depths) - min(depths) <= 2 * len(points)


@given(sink_sets)
@settings(max_examples=25, deadline=None)
def test_candidates_always_balanced_on_empty_grid(points):
    points = sorted(points)
    grid = RoutingGrid(30, 30)
    candidates = generate_candidates(grid, 0, points, k=4)
    assume(candidates)
    for tree in candidates:
        lengths = tree.full_path_lengths()
        assert set(lengths) == set(range(len(points)))
        assert max(lengths.values()) - min(lengths.values()) <= 2 * len(points)
        # Internal nodes are on-grid and distinct from sinks when blocked.
        for node in tree.root.walk():
            assert grid.in_bounds(node.position)


@given(sink_sets, st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_candidate_count_respects_k(points, k):
    grid = RoutingGrid(30, 30)
    candidates = generate_candidates(grid, 0, sorted(points), k=k)
    assert len(candidates) <= k
    signatures = {t.signature() for t in candidates}
    assert len(signatures) == len(candidates)
