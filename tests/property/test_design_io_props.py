"""Property-based tests for design JSON round-tripping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import design_from_json, design_to_json
from repro.designs.design import Design
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.valves import ActivationSequence, Valve


@st.composite
def designs(draw):
    width = draw(st.integers(8, 24))
    height = draw(st.integers(8, 24))
    grid = RoutingGrid(width, height)
    interior = st.tuples(
        st.integers(1, width - 2), st.integers(1, height - 2)
    )
    n_valves = draw(st.integers(1, 8))
    positions = draw(
        st.lists(interior, min_size=n_valves, max_size=n_valves, unique=True)
    )
    seqs = draw(
        st.lists(
            st.text(alphabet="01X", min_size=4, max_size=4),
            min_size=n_valves,
            max_size=n_valves,
        )
    )
    valves = [
        Valve(i, Point(*positions[i]), ActivationSequence(seqs[i]))
        for i in range(n_valves)
    ]
    taken = set(positions)
    obstacle_candidates = draw(st.sets(interior, max_size=10))
    for x, y in obstacle_candidates - taken:
        grid.set_obstacle(Point(x, y))
    # Pins on the boundary (always free: obstacles are interior).
    n_pins = draw(st.integers(1, 6))
    boundary = grid.boundary_cells()
    step = max(1, len(boundary) // n_pins)
    pins = boundary[::step][:n_pins]
    # A compatible LM pair when possible.
    lm_groups = []
    if n_valves >= 2 and valves[0].compatible(valves[1]):
        lm_groups = [[0, 1]]
    design = Design(
        name="prop",
        grid=grid,
        valves=valves,
        lm_groups=lm_groups,
        control_pins=pins,
        delta=draw(st.integers(0, 3)),
    )
    design.validate()
    return design


@given(designs())
@settings(max_examples=30, deadline=None)
def test_json_roundtrip_preserves_everything(design):
    rebuilt = design_from_json(design_to_json(design))
    assert rebuilt.name == design.name
    assert rebuilt.grid.width == design.grid.width
    assert rebuilt.grid.height == design.grid.height
    assert set(rebuilt.grid.obstacle_cells()) == set(design.grid.obstacle_cells())
    assert [(v.id, v.position, v.sequence) for v in rebuilt.valves] == [
        (v.id, v.position, v.sequence) for v in design.valves
    ]
    assert rebuilt.lm_groups == design.lm_groups
    assert rebuilt.control_pins == design.control_pins
    assert rebuilt.delta == design.delta


@given(designs())
@settings(max_examples=15, deadline=None)
def test_roundtrip_is_idempotent(design):
    doc1 = design_to_json(design)
    doc2 = design_to_json(design_from_json(doc1))
    assert doc1 == doc2
