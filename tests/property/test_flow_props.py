"""Property-based end-to-end tests: random designs through the full flow.

Each example synthesizes a random (but valid) design, runs PACOR and
checks the solution with the independent verifier — the strongest
invariant the library offers.  Example counts are modest because each
example routes a whole chip.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import verify_result
from repro.core import PacorConfig, run_pacor
from repro.designs import ClusterPlan, generate_design
from repro.escape import EscapeSource, check_paper_constraints, solve_escape
from repro.geometry import Point
from repro.grid import RoutingGrid

_FLOW_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def design_specs(draw):
    n_clusters = draw(st.integers(0, 3))
    sizes = [draw(st.integers(2, 4)) for _ in range(n_clusters)]
    return {
        "sizes": sizes,
        "singletons": draw(st.integers(0 if n_clusters else 1, 4)),
        "obstacles": draw(st.integers(0, 25)),
        "seed": draw(st.integers(0, 10_000)),
    }


@given(design_specs())
@_FLOW_SETTINGS
def test_random_designs_route_and_verify(spec):
    design = generate_design(
        "prop-flow",
        36,
        36,
        clusters=[ClusterPlan(s) for s in spec["sizes"]],
        n_singletons=spec["singletons"],
        n_pins=24,
        n_obstacles=spec["obstacles"],
        seed=spec["seed"],
    )
    result = run_pacor(design)
    # Verification raises on any hard violation (crossings, obstacle
    # hits, bad pins, incompatible valves, false matching claims).
    verify_result(design, result)
    # On these roomy instances, completion is always total.
    assert result.completion_rate == 1.0
    # Every matched net's reported mismatch honours delta.
    for net in result.nets:
        if net.matched:
            assert net.mismatch is not None and net.mismatch <= design.delta


@given(design_specs(), st.sampled_from(["w/o Sel", "Detour First"]))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_baselines_also_verify(spec, method):
    from repro.core import run_method

    design = generate_design(
        "prop-base",
        30,
        30,
        clusters=[ClusterPlan(s) for s in spec["sizes"]],
        n_singletons=spec["singletons"],
        n_pins=20,
        n_obstacles=min(spec["obstacles"], 15),
        seed=spec["seed"],
    )
    result = run_method(design, method)
    verify_result(design, result)


@st.composite
def escape_instances(draw):
    grid = RoutingGrid(16, 16)
    n_obstacles = draw(st.integers(0, 12))
    for _ in range(n_obstacles):
        grid.set_obstacle(
            Point(draw(st.integers(2, 13)), draw(st.integers(2, 13)))
        )
    taps = draw(
        st.sets(
            st.builds(Point, st.integers(3, 12), st.integers(3, 12)),
            min_size=1,
            max_size=4,
        )
    )
    taps = {t for t in taps if grid.is_free(t)}
    if not taps:
        taps = {Point(8, 8)}
        grid.set_obstacle(Point(8, 8), False)
    sources = [EscapeSource(i, (t,)) for i, t in enumerate(sorted(taps))]
    pins = [Point(x, 0) for x in range(1, 16, 3)]
    return grid, sources, pins


@given(escape_instances())
@settings(max_examples=25, deadline=None)
def test_escape_solutions_satisfy_paper_constraints(instance):
    grid, sources, pins = instance
    result = solve_escape(grid, sources, pins)
    check_paper_constraints(grid, sources, pins, set(), result)
    # Routed paths end on distinct pins.
    pins_used = [result.pin_of[c] for c in result.paths]
    assert len(pins_used) == len(set(pins_used))
