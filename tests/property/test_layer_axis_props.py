"""Property tests for the layers=1 equivalence invariant.

The layer axis is only allowed to *extend* the routing substrate: a
single-layer grid must behave bit-identically to the planar code it
replaced, and a layered grid whose upper layers are unusable must
reproduce the planar solution exactly — same cells, same lengths, same
counters, same canonical documents.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PacorConfig, run_pacor
from repro.designs import (
    ClusterPlan,
    design_from_json,
    design_to_json,
    generate_design,
)
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.grid.grid import cell_point
from repro.observability import Metrics, use
from repro.routing import astar_route

grid_points = st.builds(Point, st.integers(0, 11), st.integers(0, 11))
obstacle_sets = st.sets(grid_points, max_size=25)


def _blocked_upper(width, height, layers=2, via_cost=1):
    """A layered grid whose upper layers are wall-to-wall obstacles."""
    grid = RoutingGrid(width, height, layers, via_cost=via_cost)
    grid.add_obstacles(
        cell_point(x, y, z)
        for z in range(1, layers)
        for y in range(height)
        for x in range(width)
    )
    return grid


def _canonical(result):
    doc = result.to_json()
    doc["summary"].pop("runtime_s", None)
    return json.dumps(doc, sort_keys=True)


@given(grid_points, grid_points, obstacle_sets)
@settings(max_examples=60, deadline=None)
def test_astar_matches_planar_when_upper_layer_is_walled(
    src, dst, obstacles
):
    obstacles -= {src, dst}
    planar = RoutingGrid(12, 12)
    planar.add_obstacles(obstacles)
    layered = _blocked_upper(12, 12)
    layered.add_obstacles(obstacles)
    p1 = astar_route(planar, [src], [dst])
    p2 = astar_route(layered, [src], [dst])
    if p1 is None:
        assert p2 is None
        return
    assert p2 is not None
    assert list(p1.cells) == list(p2.cells)
    assert p1.length == p2.length


@given(grid_points, grid_points, st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_open_upper_layer_never_shortens_a_planar_route(src, dst, via_cost):
    # Layer hops cost via_cost each and make no planar progress, so on
    # an obstacle-free chip the layered optimum equals the planar one.
    planar = RoutingGrid(12, 12)
    layered = RoutingGrid(12, 12, 2, via_cost=via_cost)
    p1 = astar_route(planar, [src], [dst])
    p2 = astar_route(layered, [src], [dst])
    assert p1 is not None and p2 is not None
    assert p1.length == p2.length


@st.composite
def small_designs(draw):
    seed = draw(st.integers(0, 50))
    n_singletons = draw(st.integers(1, 3))
    return generate_design(
        f"prop-{seed}-{n_singletons}",
        14,
        14,
        clusters=[ClusterPlan(size=2, length_matching=True)],
        n_singletons=n_singletons,
        n_pins=8,
        n_obstacles=6,
        seed=seed,
    )


@given(small_designs())
@settings(max_examples=10, deadline=None)
def test_flow_identical_on_walled_two_layer_lift(design):
    lifted = design.with_layers(2)
    lifted.grid.add_obstacles(
        cell_point(x, y, 1)
        for y in range(design.grid.height)
        for x in range(design.grid.width)
    )
    base = run_pacor(design, PacorConfig())
    walled = run_pacor(lifted, PacorConfig())
    assert _canonical(base) == _canonical(walled)


@given(small_designs())
@settings(max_examples=10, deadline=None)
def test_planar_flow_emits_no_layer_artifacts(design):
    metrics = Metrics()
    with use(metrics=metrics):
        result = run_pacor(design, PacorConfig())
    counters = metrics.counter_values()
    assert "via.segments" not in counters
    assert "via.nets" not in counters
    doc = result.to_json()
    for net in doc["nets"]:
        assert all(len(cell) == 2 for cell in net["cells"])
        for a, b in net["segments"]:
            assert len(a) == 2 and len(b) == 2


@given(small_designs())
@settings(max_examples=10, deadline=None)
def test_with_layers_one_preserves_canonical_hash(design):
    assert design.with_layers(1).canonical_hash() == design.canonical_hash()


@given(
    small_designs(),
    st.integers(2, 3),
    st.integers(1, 3),
    st.sets(st.builds(Point, st.integers(0, 13), st.integers(0, 13)), max_size=4),
)
@settings(max_examples=10, deadline=None)
def test_layered_design_json_round_trip(design, layers, via_cost, keepouts):
    lifted = design.with_layers(layers, via_cost=via_cost)
    for site in keepouts:
        lifted.grid.set_via_blocked(site)
    restored = design_from_json(design_to_json(lifted))
    assert restored.grid.layers == layers
    assert restored.grid.via_cost == via_cost
    assert restored.canonical_hash() == lifted.canonical_hash()
