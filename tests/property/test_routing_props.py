"""Property-based tests for the routers."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import Point, manhattan
from repro.grid import Occupancy, RoutingGrid
from repro.routing import (
    Path,
    astar_route,
    bounded_length_route,
    extend_path_with_bumps,
    manhattan_mst,
    route_cluster_mst,
)

grid_points = st.builds(
    Point, st.integers(0, 19), st.integers(0, 19)
)
obstacle_sets = st.sets(grid_points, max_size=40)


def make_grid(obstacles):
    grid = RoutingGrid(20, 20)
    grid.add_obstacles(obstacles)
    return grid


@given(grid_points, grid_points, obstacle_sets)
@settings(max_examples=60, deadline=None)
def test_astar_path_valid_and_optimal_lower_bound(src, dst, obstacles):
    obstacles -= {src, dst}
    grid = make_grid(obstacles)
    path = astar_route(grid, [src], [dst])
    if path is None:
        return
    assert path.source == src
    assert path.target == dst
    assert path.length >= manhattan(src, dst)
    assert all(grid.is_free(c) for c in path.cells)
    # A* with unit costs is optimal: no shorter free path can exist when
    # the straight-line corridor is clear.
    if not obstacles:
        assert path.length == manhattan(src, dst)


@given(grid_points, grid_points)
@settings(max_examples=40, deadline=None)
def test_astar_on_empty_grid_is_exact(src, dst):
    grid = RoutingGrid(20, 20)
    path = astar_route(grid, [src], [dst])
    assert path is not None
    assert path.length == manhattan(src, dst)


@given(grid_points, grid_points, st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_bounded_route_respects_window(src, dst, extra):
    assume(src != dst)
    grid = RoutingGrid(20, 20)
    base = manhattan(src, dst)
    lo = base + extra
    hi = lo + 1
    path = bounded_length_route(grid, src, dst, lo, hi, max_states=30_000)
    if path is not None:
        assert lo <= path.length <= hi
        assert path.is_simple()
        assert path.source == src and path.target == dst


@given(st.integers(2, 15), st.integers(0, 8))
@settings(max_examples=40, deadline=None)
def test_bump_extension_exact(length, bumps):
    grid = RoutingGrid(40, 40)
    path = Path([Point(5 + i, 20) for i in range(length + 1)])
    extended = extend_path_with_bumps(grid, path, 2 * bumps)
    assert extended is not None
    assert extended.length == path.length + 2 * bumps
    assert extended.is_simple()
    assert extended.source == path.source
    assert extended.target == path.target


@given(st.lists(grid_points, min_size=1, max_size=10, unique=True))
@settings(max_examples=40, deadline=None)
def test_mst_edge_count_and_symmetry(points):
    edges = manhattan_mst(points)
    assert len(edges) == len(points) - 1
    # Every index appears; the edge set spans all points.
    seen = {0}
    for parent, child in edges:
        assert parent in seen
        seen.add(child)
    assert seen == set(range(len(points)))


@given(st.lists(grid_points, min_size=2, max_size=6, unique=True))
@settings(max_examples=30, deadline=None)
def test_route_cluster_mst_connects_on_empty_grid(terminals):
    grid = RoutingGrid(20, 20)
    occupancy = Occupancy(grid)
    result = route_cluster_mst(grid, occupancy, 1, terminals)
    assert result.success
    cells = occupancy.cells_of(1)
    # BFS connectivity across the net's cells (MST paths are contiguous).
    frontier = [terminals[0]]
    seen = {terminals[0]}
    while frontier:
        p = frontier.pop()
        for q in p.neighbors4():
            if q in cells and q not in seen:
                seen.add(q)
                frontier.append(q)
    assert all(t in seen for t in terminals)
