"""Property-based tests for ``Design.canonical_hash``.

The hash is the content address of the service result cache, so its
contract is load-bearing: representation choices (JSON key order,
serialisation detours, obstacle enumeration order) must not move it,
while any semantic change to the design must.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import design_from_json, design_to_json
from repro.designs.design import Design
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.valves import ActivationSequence, Valve


@st.composite
def designs(draw):
    width = draw(st.integers(8, 24))
    height = draw(st.integers(8, 24))
    grid = RoutingGrid(width, height)
    interior = st.tuples(
        st.integers(1, width - 2), st.integers(1, height - 2)
    )
    n_valves = draw(st.integers(1, 8))
    positions = draw(
        st.lists(interior, min_size=n_valves, max_size=n_valves, unique=True)
    )
    seqs = draw(
        st.lists(
            st.text(alphabet="01X", min_size=4, max_size=4),
            min_size=n_valves,
            max_size=n_valves,
        )
    )
    valves = [
        Valve(i, Point(*positions[i]), ActivationSequence(seqs[i]))
        for i in range(n_valves)
    ]
    taken = set(positions)
    obstacle_candidates = draw(st.sets(interior, max_size=10))
    for x, y in obstacle_candidates - taken:
        grid.set_obstacle(Point(x, y))
    n_pins = draw(st.integers(1, 6))
    boundary = grid.boundary_cells()
    step = max(1, len(boundary) // n_pins)
    pins = boundary[::step][:n_pins]
    lm_groups = []
    if n_valves >= 2 and valves[0].compatible(valves[1]):
        lm_groups = [[0, 1]]
    design = Design(
        name="prop",
        grid=grid,
        valves=valves,
        lm_groups=lm_groups,
        control_pins=pins,
        delta=draw(st.integers(0, 3)),
    )
    design.validate()
    return design


@given(designs())
@settings(max_examples=25, deadline=None)
def test_json_roundtrip_preserves_hash(design):
    rebuilt = design_from_json(design_to_json(design))
    assert rebuilt.canonical_hash() == design.canonical_hash()


@given(designs(), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_reserialisation_and_key_order_do_not_move_hash(design, seed):
    """A shuffled-key, re-parsed document hashes to the same address."""
    doc = design_to_json(design)
    # JSON text with keys in random order, parsed back into dicts whose
    # insertion order differs from the canonical one.
    rng = random.Random(seed)

    def shuffled(node):
        if isinstance(node, dict):
            items = list(node.items())
            rng.shuffle(items)
            return {k: shuffled(v) for k, v in items}
        if isinstance(node, list):
            return [shuffled(v) for v in node]
        return node

    scrambled = json.loads(json.dumps(shuffled(doc)))
    assert (
        design_from_json(scrambled).canonical_hash()
        == design.canonical_hash()
    )


@given(designs(), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_obstacle_insertion_order_does_not_move_hash(design, seed):
    """Obstacles are a *set*; enumeration order must not leak in."""
    doc = design_to_json(design)
    rebuilt = design_from_json(doc)
    cells = list(rebuilt.grid.obstacle_cells())
    if len(cells) < 2:
        return
    grid = RoutingGrid(rebuilt.grid.width, rebuilt.grid.height)
    shuffled_cells = list(cells)
    random.Random(seed).shuffle(shuffled_cells)
    for cell in shuffled_cells:
        grid.set_obstacle(cell)
    reordered = Design(
        name=rebuilt.name,
        grid=grid,
        valves=rebuilt.valves,
        lm_groups=rebuilt.lm_groups,
        control_pins=rebuilt.control_pins,
        delta=rebuilt.delta,
    )
    assert reordered.canonical_hash() == design.canonical_hash()


@given(designs())
@settings(max_examples=25, deadline=None)
def test_semantic_changes_move_the_hash(design):
    base = design.canonical_hash()
    doc = design_to_json(design)

    def rebuilt_hash(mutate):
        changed = json.loads(json.dumps(doc))
        mutate(changed)
        return design_from_json(changed).canonical_hash()

    def bump_delta(d):
        d["delta"] = d["delta"] + 1

    def rename(d):
        d["name"] = d["name"] + "-v2"

    def flip_sequence(d):
        seq = d["valves"][0]["sequence"]
        flipped = ("1" if seq[0] == "0" else "0") + seq[1:]
        d["valves"][0]["sequence"] = flipped

    for mutate in (bump_delta, rename, flip_sequence):
        assert rebuilt_hash(mutate) != base

    def drop_pin(d):
        d["control_pins"] = d["control_pins"][:-1]

    if len(doc["control_pins"]) > 1:
        assert rebuilt_hash(drop_pin) != base
