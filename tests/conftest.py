"""Shared fixtures for the PACOR reproduction test suite."""

import pytest

from repro.grid import Occupancy, RoutingGrid


@pytest.fixture
def grid10():
    """An empty 10x10 routing grid."""
    return RoutingGrid(10, 10)


@pytest.fixture
def grid20():
    """An empty 20x20 routing grid."""
    return RoutingGrid(20, 20)


@pytest.fixture
def occupancy10(grid10):
    """A fresh occupancy overlay on the 10x10 grid."""
    return Occupancy(grid10)
