"""Shared fixtures for the PACOR reproduction test suite."""

import pytest

from repro.grid import Occupancy, RoutingGrid


def pytest_configure(config):
    """Install the runtime determinism sanitizer under REPRO_SANITIZE=1.

    The whole suite then runs with write-protected occupancy arrays,
    verified SpaceCache checkouts and guarded wall-clock reads (see
    docs/static_analysis.md).
    """
    from repro.analysis.sanitize import install_from_env

    if install_from_env():
        config.stash[_SANITIZE_KEY] = True


def pytest_unconfigure(config):
    if config.stash.get(_SANITIZE_KEY, False):
        from repro.analysis.sanitize import uninstall

        uninstall()


_SANITIZE_KEY = pytest.StashKey()


@pytest.fixture
def grid10():
    """An empty 10x10 routing grid."""
    return RoutingGrid(10, 10)


@pytest.fixture
def grid20():
    """An empty 20x20 routing grid."""
    return RoutingGrid(20, 20)


@pytest.fixture
def occupancy10(grid10):
    """A fresh occupancy overlay on the 10x10 grid."""
    return Occupancy(grid10)
