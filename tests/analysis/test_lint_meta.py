"""Meta-checks: the real tree is violation-free and rule metadata is sane."""

import time
from pathlib import Path

import pytest

import repro.robustness as robustness
from repro.analysis.lint import (
    Baseline,
    FileRule,
    GraphRule,
    ProjectRule,
    find_baseline,
    registered_rules,
    run_lint,
)
from repro.analysis.lint.rules import _TAXONOMY_NAMES
from repro.robustness.errors import PacorError

REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_RULES = {
    "DET001",
    "DET002",
    "DET003",
    "ERR001",
    "OBS001",
    "CHK001",
    "PERF001",
    "FLT001",
    "RACE001",
    "SPAWN001",
    "PURE001",
}


def test_registry_holds_the_documented_rules():
    registry = registered_rules()
    assert set(registry) == EXPECTED_RULES
    for rule_id, rule_cls in registry.items():
        assert rule_cls.id == rule_id
        assert rule_cls.rationale
        assert issubclass(rule_cls, (FileRule, ProjectRule, GraphRule))


def test_src_repro_is_violation_free():
    """The tree is clean under every rule, modulo the checked-in baseline.

    Every baseline entry must carry a human-written justification — a
    TODO reason means debt was added without being thought about.
    """
    src = REPO_ROOT / "src" / "repro"
    assert src.is_dir()
    baseline_path = find_baseline(REPO_ROOT)
    assert baseline_path is not None, "checked-in baseline file is missing"
    baseline = Baseline.load(baseline_path)
    start = time.perf_counter()
    result = run_lint([src], root=REPO_ROOT, baseline=baseline)
    elapsed = time.perf_counter() - start
    report = "\n".join(
        f"{v.path}:{v.line}: {v.rule} {v.message}" for v in result.violations
    )
    assert result.clean, f"pacorlint violations in src/repro:\n{report}"
    assert result.files_checked > 50
    assert not result.stale_baseline, [
        e.key for e in result.stale_baseline
    ]
    for _violation, entry in result.baselined:
        assert entry.reason and "TODO" not in entry.reason, entry.key
    # The shared AST cache keeps a full-repo run cheap; a regression
    # here means rules went back to re-parsing per rule.
    assert elapsed < 5.0, f"full-repo lint took {elapsed:.2f}s (budget: 5s)"


def test_taxonomy_names_match_robustness_package():
    for name in sorted(_TAXONOMY_NAMES):
        cls = getattr(robustness, name, None)
        assert cls is not None, f"ERR001 whitelists unknown class {name}"
        if name != "FaultInjected":  # deliberately outside the taxonomy
            assert issubclass(cls, PacorError), name


def test_rules_are_documented():
    doc = (REPO_ROOT / "docs" / "static_analysis.md").read_text(
        encoding="utf-8"
    )
    for rule_id in EXPECTED_RULES:
        assert rule_id in doc, f"{rule_id} missing from docs/static_analysis.md"


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_RULES))
def test_every_rule_instantiates(rule_id):
    rule = registered_rules()[rule_id]()
    assert rule.id == rule_id
