"""Tests for the runtime determinism sanitizer (repro.analysis.sanitize).

Every test manages the install state through the ``sanitizer`` fixture,
which restores whatever was active before (the suite itself may already
run under ``REPRO_SANITIZE=1`` via the root conftest).
"""

import threading
import time

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizerError
from repro.grid import Occupancy, RoutingGrid
from repro.observability import context as obs
from repro.observability.metrics import Metrics
from repro.robustness.errors import PacorError


@pytest.fixture
def sanitizer():
    """Sanitizer installed for the test; prior state restored after."""
    was_on = sanitize.enabled()
    saved_locks = list(sanitize._locks)
    sanitize.install()
    yield sanitize
    if was_on:
        sanitize._locks[:] = saved_locks
    else:
        sanitize.uninstall()


def _occ(n=10):
    return Occupancy(RoutingGrid(n, n))


# ---------------------------------------------------------------------------
# install / uninstall lifecycle


def test_install_is_idempotent(sanitizer):
    shim = time.time
    sanitizer.install()
    # A second install must not stack another wrapper.
    assert time.time is shim
    assert sanitizer.enabled()


def test_uninstall_restores_every_seam():
    was_on = sanitize.enabled()
    original_clock = (
        sanitize._saved["time_time"] if was_on else time.time
    )
    original_mutator = (
        sanitize._saved["occ_occupy_ids"]
        if was_on
        else Occupancy.occupy_ids
    )
    sanitize.install()
    assert time.time is not original_clock
    sanitize.uninstall()
    assert time.time is original_clock
    assert Occupancy.occupy_ids is original_mutator
    assert not sanitize.enabled()
    # Uninstall is idempotent too.
    sanitize.uninstall()
    occ = _occ()
    occ._owner[0] = 3  # arrays are born writable again
    if was_on:
        sanitize.install()


def test_install_from_env_flag_parsing(monkeypatch):
    was_on = sanitize.enabled()
    sanitize.uninstall()
    try:
        for falsy in ("", "0", "false", "no", "  FALSE "):
            monkeypatch.setenv("REPRO_SANITIZE", falsy)
            assert sanitize.install_from_env() is False
            assert not sanitize.enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.install_from_env() is True
        assert sanitize.enabled()
    finally:
        if not was_on:
            sanitize.uninstall()
        else:
            sanitize.install()


# ---------------------------------------------------------------------------
# occupancy write protection


def test_direct_array_write_raises(sanitizer):
    occ = _occ()
    with pytest.raises(ValueError, match="read-only"):
        occ._owner[0] = 5
    with pytest.raises(ValueError, match="read-only"):
        occ._overlay[0] = 1


def test_sanctioned_mutators_still_work(sanitizer):
    occ = _occ()
    occ.occupy_ids([0, 1], net=2)
    assert occ.owner_id(0) == 2
    occ.release_cell_ids([0])
    assert occ.owner_id(0) != 2
    occ.release_ids(2)
    assert occ.occupied_count() == 0
    # The window of writability closes again after each call.
    with pytest.raises(ValueError, match="read-only"):
        occ._owner[3] = 1


def test_unprotected_escape_hatch(sanitizer):
    occ = _occ()
    with sanitize.unprotected(occ):
        occ._owner[1] = 7
        occ._overlay[1] = 1
    assert occ.owner_id(1) == 7
    with pytest.raises(ValueError, match="read-only"):
        occ._owner[2] = 7


def test_rebound_arrays_are_reprotected_after_import_state(sanitizer):
    occ = _occ()
    occ.occupy_ids([4], net=1)
    state = occ.export_state()
    occ.import_state(state)  # rebinds _owner/_overlay internally
    assert occ.owner_id(4) == 1
    with pytest.raises(ValueError, match="read-only"):
        occ._owner[5] = 2
    occ.repair()  # also rebuilds the overlay
    with pytest.raises(ValueError, match="read-only"):
        occ._overlay[5] = 1


# ---------------------------------------------------------------------------
# SpaceCache checkout verification


def test_checkout_verification_passes_on_honest_mutation(sanitizer):
    occ = _occ()
    cache = occ.space_cache()
    space = cache.space()
    assert not space.blocked[3]
    occ.occupy_ids([3], net=1)  # mutator feeds the dirty set
    assert cache.space().blocked[3]


def test_checkout_verification_catches_dirty_set_bypass(sanitizer):
    occ = _occ()
    cache = occ.space_cache()
    cache.space()
    # Corrupt the overlay behind the dirty-set protocol's back.
    with sanitize.unprotected(occ):
        occ._overlay[5] = 1
        occ._owner[5] = 9
    with pytest.raises(SanitizerError, match="bypassed the dirty-set"):
        cache.space()


def test_checkout_verification_increments_counter(sanitizer):
    metrics = Metrics()
    with obs.use(metrics=metrics):
        occ = _occ()
        occ.space_cache().space()
        occ.space_cache().space(net=1)
    assert metrics.counter("sanitize.space_checks").value == 2


# ---------------------------------------------------------------------------
# clock policing


def _read_clock_as(module_name, name="time"):
    """Call ``time.<name>()`` from a frame whose module is ``module_name``."""
    ns = {"__name__": module_name, "time": time}
    exec(f"result = time.{name}()", ns)
    return ns["result"]


def test_clock_guard_blocks_kernel_modules(sanitizer):
    with pytest.raises(SanitizerError, match="wall-clock"):
        _read_clock_as("repro.routing.core.engine")
    with pytest.raises(SanitizerError, match="wall-clock"):
        _read_clock_as("repro.detour.planner", name="monotonic")


def test_clock_guard_allows_whitelisted_and_foreign_modules(sanitizer):
    assert _read_clock_as("repro.robustness.budget") > 0
    assert _read_clock_as("repro.service.daemon", name="monotonic") > 0
    assert _read_clock_as("tests.analysis.test_sanitize") > 0
    assert _read_clock_as("logging") > 0


# ---------------------------------------------------------------------------
# cross-thread mutation policy


def _mutate_in_thread(fn):
    errors = []

    def runner():
        try:
            fn()
        except PacorError as exc:
            errors.append(exc)

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    return errors


def test_cross_thread_mutation_without_lock_raises(sanitizer):
    occ = _occ()  # owned by the test (main) thread
    errors = _mutate_in_thread(lambda: occ.occupy_ids([2], net=1))
    assert len(errors) == 1
    assert "register_lock" in str(errors[0])


def test_cross_thread_mutation_under_registered_lock_passes(sanitizer):
    occ = _occ()
    lock = threading.RLock()
    sanitizer.register_lock(lock)

    def locked_mutation():
        with lock:
            occ.occupy_ids([2], net=1)

    assert _mutate_in_thread(locked_mutation) == []
    assert occ.owner_id(2) == 1


def test_same_thread_mutation_never_needs_a_lock(sanitizer):
    occ = _occ()
    occ.occupy_ids([1], net=3)
    occ.release_ids(3)


def test_blocked_masks_stay_immutable_views(sanitizer):
    # The protection extends to what kernels actually consume: a
    # SearchSpace fused from protected arrays must not be writable
    # through the occupancy either.
    occ = _occ()
    occ.occupy_ids([7], net=1)
    view = occ.space_cache().space()
    assert bool(view.blocked[7])
    assert isinstance(view.blocked, np.ndarray)
