"""Positive and negative fixtures for every pacorlint rule."""

from repro.analysis.lint import run_lint


def _lint(root, rule):
    return run_lint([root / "src"], root=root, rule_ids=[rule])


# --------------------------------------------------------------------------
# DET001 — unseeded randomness


def test_det001_flags_module_level_random(make_project):
    root = make_project(
        {
            "src/repro/designs/gen.py": """\
            import random

            def jitter(xs):
                random.shuffle(xs)
                return xs
            """
        }
    )
    result = _lint(root, "DET001")
    assert [v.rule for v in result.violations] == ["DET001"]
    assert "random.shuffle" in result.violations[0].message


def test_det001_flags_from_import_and_numpy(make_project):
    root = make_project(
        {
            "src/repro/designs/gen.py": """\
            import numpy as np
            from random import shuffle

            def jitter(xs):
                shuffle(xs)
                return np.random.rand(3)
            """
        }
    )
    result = _lint(root, "DET001")
    assert len(result.violations) == 2


def test_det001_allows_seeded_instances(make_project):
    root = make_project(
        {
            "src/repro/designs/gen.py": """\
            import random

            import numpy as np

            def jitter(xs, seed):
                rng = random.Random(seed)
                rng.shuffle(xs)
                return np.random.default_rng(seed).random(3)
            """
        }
    )
    assert _lint(root, "DET001").clean


# --------------------------------------------------------------------------
# DET002 — wall-clock reads


def test_det002_flags_wall_clock_in_flow_code(make_project):
    root = make_project(
        {
            "src/repro/routing/timing.py": """\
            import time
            from time import monotonic

            def stamp():
                return time.time() + monotonic()
            """
        }
    )
    result = _lint(root, "DET002")
    assert len(result.violations) == 2
    assert all(v.rule == "DET002" for v in result.violations)


def test_det002_flags_datetime_now(make_project):
    root = make_project(
        {
            "src/repro/core/run.py": """\
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        }
    )
    assert len(_lint(root, "DET002").violations) == 1


def test_det002_allows_whitelisted_modules_and_perf_counter(make_project):
    root = make_project(
        {
            # The budget module is the designated decision clock...
            "src/repro/robustness/budget.py": """\
            import time

            def now():
                return time.monotonic()
            """,
            # ...and perf_counter (pure duration measurement) is fine
            # anywhere.
            "src/repro/routing/timing.py": """\
            import time

            def measure():
                return time.perf_counter()
            """,
        }
    )
    assert _lint(root, "DET002").clean


# --------------------------------------------------------------------------
# DET003 — set iteration in kernels


def test_det003_flags_set_iteration_in_kernel(make_project):
    root = make_project(
        {
            "src/repro/routing/kern.py": """\
            def pick(cells):
                frontier = set(cells)
                for cell in frontier:
                    yield cell
            """
        }
    )
    result = _lint(root, "DET003")
    assert [v.rule for v in result.violations] == ["DET003"]


def test_det003_flags_list_of_set_and_comprehensions(make_project):
    root = make_project(
        {
            "src/repro/dme/kern.py": """\
            def order(a, b):
                merged = list(set(a) | set(b))
                squares = [x * x for x in {1, 2, 3}]
                return merged, squares
            """
        }
    )
    assert len(_lint(root, "DET003").violations) == 2


def test_det003_allows_sorted_iteration_and_non_kernels(make_project):
    root = make_project(
        {
            "src/repro/routing/kern.py": """\
            def pick(cells):
                frontier = set(cells)
                for cell in sorted(frontier):
                    yield cell
            """,
            # geometry is not a kernel package: bare set iteration is
            # out of DET003's scope there.
            "src/repro/geometry/hull.py": """\
            def corners(points):
                uniq = set(points)
                return [p for p in uniq]
            """,
        }
    )
    assert _lint(root, "DET003").clean


# --------------------------------------------------------------------------
# ERR001 — PacorError taxonomy


def test_err001_flags_bare_valueerror_in_flow_stage(make_project):
    root = make_project(
        {
            "src/repro/routing/astar.py": """\
            def route(net):
                if net is None:
                    raise ValueError("no net")
            """
        }
    )
    result = _lint(root, "ERR001")
    assert [v.rule for v in result.violations] == ["ERR001"]
    assert "PacorError taxonomy" in result.violations[0].message


def test_err001_allows_taxonomy_validation_and_reraise(make_project):
    root = make_project(
        {
            # Flow stage using the taxonomy, a local subclass, and a
            # bound re-raise: all fine.
            "src/repro/routing/astar.py": """\
            from repro.robustness.errors import KernelPreconditionError, PacorError

            class AStarError(PacorError):
                pass

            def route(net):
                if net is None:
                    raise KernelPreconditionError("no net")
                try:
                    return net.pins
                except AttributeError as err:
                    raise err

            def fail():
                raise AStarError("local subclass is fine")
            """,
            # geometry is a validation package: ValueError/TypeError ok.
            "src/repro/geometry/point.py": """\
            def scale(p, k):
                if k <= 0:
                    raise ValueError("k must be positive")
                if not isinstance(p, tuple):
                    raise TypeError("p must be a tuple")
                return (p[0] * k, p[1] * k)
            """,
        }
    )
    assert _lint(root, "ERR001").clean


# --------------------------------------------------------------------------
# OBS001 — counter coverage


_MAPPING = """\
# Paper mapping

## Kernel counters

| Counter | Kernel |
| --- | --- |
| `astar.expansions` | `repro.routing.astar` |
"""


def test_obs001_flags_missing_increment(make_project):
    root = make_project(
        {
            "src/repro/routing/astar.py": """\
            def route(net):
                return net
            """
        },
        mapping=_MAPPING,
    )
    result = _lint(root, "OBS001")
    messages = " ".join(v.message for v in result.violations)
    assert "astar.expansions" in messages
    assert "repro.routing.astar" in messages
    assert all(v.path == "docs/paper_mapping.md" for v in result.violations)


def test_obs001_accepts_instrumented_kernel(make_project):
    root = make_project(
        {
            "src/repro/routing/astar.py": """\
            def route(net, metrics):
                metrics.counter("astar.expansions").add(1)
                return net
            """
        },
        mapping=_MAPPING,
    )
    assert _lint(root, "OBS001").clean


def test_obs001_resolves_reexported_symbols(make_project):
    mapping = """\
    # Paper mapping

    ## Kernel counters

    | Counter | Kernel |
    | --- | --- |
    | `mcf.pushes` | `repro.flownet.MinCostFlow` |
    """
    root = make_project(
        {
            # The symbol lives in a submodule of the ref's prefix, as
            # with re-exports through __init__.
            "src/repro/flownet/impl.py": """\
            class MinCostFlow:
                def solve(self, metrics):
                    metrics.counter("mcf.pushes").add(1)
            """
        },
        mapping=mapping,
    )
    assert _lint(root, "OBS001").clean


# --------------------------------------------------------------------------
# CHK001 — serialized dataclass schema drift


def test_chk001_flags_field_missing_from_to_json(make_project):
    root = make_project(
        {
            "src/repro/robustness/snap.py": """\
            from dataclasses import dataclass

            @dataclass
            class Snap:
                a: int
                b: int

                def to_json(self):
                    return {"a": self.a}

                @classmethod
                def from_json(cls, doc):
                    return cls(a=doc["a"], b=doc["b"])
            """
        }
    )
    result = _lint(root, "CHK001")
    assert [v.rule for v in result.violations] == ["CHK001"]
    assert "'b'" in result.violations[0].message
    assert "to_json" in result.violations[0].message


def test_chk001_accepts_asdict_and_splat(make_project):
    root = make_project(
        {
            "src/repro/robustness/snap.py": """\
            from dataclasses import asdict, dataclass

            @dataclass
            class Snap:
                a: int
                b: int

                def to_json(self):
                    return asdict(self)

                @classmethod
                def from_json(cls, doc):
                    return cls(**doc)

            @dataclass
            class NotSerialized:
                c: int
            """
        }
    )
    assert _lint(root, "CHK001").clean


# --------------------------------------------------------------------------
# PERF001 — Point-keyed search state in kernel hot loops


def test_perf001_flags_point_keyed_state_in_hot_loop(make_project):
    root = make_project(
        {
            "src/repro/routing/hot.py": """\
            import heapq
            from typing import Dict, Set, Tuple

            from repro.geometry.point import Point

            def search(start):
                best: Dict[Point, float] = {}
                seen: Set[Point] = set()
                states: "Dict[Tuple[Point, int], int]" = {}
                heap = [start]
                while heap:
                    heapq.heappop(heap)
            """
        }
    )
    result = _lint(root, "PERF001")
    assert [v.rule for v in result.violations] == ["PERF001"] * 3
    flagged = {v.message.split("'")[1] for v in result.violations}
    assert flagged == {"best", "seen", "states"}


def test_perf001_allows_cold_passes_and_non_kernel_packages(make_project):
    root = make_project(
        {
            # One-shot construction pass: no while loop, no heap/deque.
            "src/repro/routing/build.py": """\
            from typing import Dict

            from repro.geometry.point import Point

            def build(cells):
                lookup: Dict[Point, int] = {}
                for i, p in enumerate(cells):
                    lookup[p] = i
                return lookup
            """,
            # Hot loop, but outside the kernel packages.
            "src/repro/analysis/sweep.py": """\
            import heapq
            from typing import Dict

            from repro.geometry.point import Point

            def sweep(heap):
                rank: Dict[Point, int] = {}
                while heap:
                    heapq.heappop(heap)
                return rank
            """,
            # Hot loop with int-keyed state: the fixed idiom.
            "src/repro/routing/cold.py": """\
            import heapq
            from typing import Dict

            def search(heap):
                best: Dict[int, float] = {}
                while heap:
                    heapq.heappop(heap)
                return best
            """,
        }
    )
    assert _lint(root, "PERF001").clean


def test_perf001_respects_line_suppression(make_project):
    root = make_project(
        {
            "src/repro/routing/hot.py": """\
            import heapq
            from typing import Dict

            from repro.geometry.point import Point

            def search(heap):
                crossings: Dict[Point, int] = {}  # pacorlint: disable=PERF001
                while heap:
                    heapq.heappop(heap)
                return crossings
            """
        }
    )
    assert _lint(root, "PERF001").clean


# --------------------------------------------------------------------------
# FLT001 — injection-point test coverage


_FAULTS_MODULE = """\
INJECTION_POINTS = (
    "solver_raise",
    "valve_stuck",
)
"""


def test_flt001_flags_unexercised_point(make_project):
    root = make_project(
        {
            "src/repro/robustness/faults.py": _FAULTS_MODULE,
            "tests/test_chaos.py": """\
            def test_solver_raise():
                arm("solver_raise")
            """,
        }
    )
    result = _lint(root, "FLT001")
    assert [v.rule for v in result.violations] == ["FLT001"]
    assert "valve_stuck" in result.violations[0].message
    assert str(result.violations[0].path).endswith("faults.py")


def test_flt001_accepts_full_coverage(make_project):
    root = make_project(
        {
            "src/repro/robustness/faults.py": _FAULTS_MODULE,
            "tests/test_chaos.py": """\
            def test_both():
                arm("solver_raise")
                arm('valve_stuck')
            """,
        }
    )
    assert _lint(root, "FLT001").clean


def test_flt001_skips_runs_without_the_faults_module(make_project):
    root = make_project(
        {
            "src/repro/routing/astar.py": """\
            def route(net):
                return net
            """,
        }
    )
    assert _lint(root, "FLT001").clean


def test_flt001_flags_missing_tests_directory(make_project):
    root = make_project({"src/repro/robustness/faults.py": _FAULTS_MODULE})
    result = _lint(root, "FLT001")
    assert result.violations
    assert "tests/" in result.violations[0].message


# --------------------------------------------------------------------------
# RACE001 — shared mutable state on worker/thread-reachable paths


def test_race001_flags_global_rebind_on_worker_path(make_project):
    root = make_project(
        {
            "src/repro/service/workers.py": """\
            from repro.service.state import remember

            def run_job(job_dir):
                remember(job_dir)
                return 0
            """,
            "src/repro/service/state.py": """\
            _LAST_JOB = None

            def remember(job_dir):
                global _LAST_JOB
                _LAST_JOB = job_dir
            """,
        }
    )
    result = _lint(root, "RACE001")
    assert [v.rule for v in result.violations] == ["RACE001"]
    assert "_LAST_JOB" in result.violations[0].message


def test_race001_flags_container_mutation_from_thread_target(make_project):
    root = make_project(
        {
            "src/repro/service/poller.py": """\
            import threading

            CACHE = {}

            def _loop():
                CACHE["tick"] = 1

            def start():
                return threading.Thread(target=_loop)
            """,
        }
    )
    result = _lint(root, "RACE001")
    assert [v.rule for v in result.violations] == ["RACE001"]
    assert "CACHE" in result.violations[0].message


def test_race001_flags_class_level_mutable_default(make_project):
    root = make_project(
        {
            "src/repro/service/workers.py": """\
            from repro.service.acc import Acc

            def run_job(job_dir):
                acc = Acc()
                return acc.push(job_dir)
            """,
            "src/repro/service/acc.py": """\
            class Acc:
                seen = []

                def push(self, item):
                    self.seen.append(item)
                    return len(self.seen)
            """,
        }
    )
    result = _lint(root, "RACE001")
    assert any("seen" in v.message for v in result.violations)


def test_race001_flags_unlocked_store_mutation(make_project):
    root = make_project(
        {
            "src/repro/service/jobs.py": """\
            class JobStore:
                def save(self, record):
                    pass

                def allocate(self):
                    pass

                def append_event(self, job_id, event):
                    pass
            """,
            "src/repro/service/daemon.py": """\
            import threading

            from repro.service.jobs import JobStore

            class Service:
                def __init__(self, root):
                    self.store = JobStore()
                    self._lock = threading.RLock()

                def submit(self, record):
                    with self._lock:
                        self.store.save(record)

                def sneak(self, record):
                    self.store.save(record)
            """,
            "src/repro/service/workers.py": """\
            def run_job(job_dir):
                return 0
            """,
        }
    )
    result = _lint(root, "RACE001")
    assert len(result.violations) == 1
    violation = result.violations[0]
    assert "sneak" in violation.message
    assert "lock" in violation.message


def test_race001_accepts_locked_store_and_local_state(make_project):
    root = make_project(
        {
            "src/repro/service/jobs.py": """\
            class JobStore:
                def save(self, record):
                    pass
            """,
            "src/repro/service/daemon.py": """\
            import threading

            from repro.service.jobs import JobStore

            class Service:
                def __init__(self, root):
                    self.store = JobStore()
                    self._lock = threading.RLock()
                    # __init__ runs pre-concurrency: unlocked is fine.
                    self.store.save(None)

                def submit(self, record):
                    with self._lock:
                        self._persist(record)

                def _persist(self, record):
                    # Every call site holds the lock.
                    self.store.save(record)
            """,
            "src/repro/service/workers.py": """\
            def run_job(job_dir):
                cache = {}
                cache["local"] = job_dir
                return cache
            """,
        }
    )
    assert _lint(root, "RACE001").clean


# --------------------------------------------------------------------------
# SPAWN001 — process-boundary field graphs must pickle


def test_spawn001_flags_callable_and_io_fields(make_project):
    root = make_project(
        {
            "src/repro/robustness/budget.py": """\
            from typing import Callable, Optional, TextIO

            class Budget:
                def __init__(
                    self,
                    clock: Optional[Callable[[], float]] = None,
                    log: Optional[TextIO] = None,
                ) -> None:
                    self.clock = clock
                    self.log = log
            """,
        }
    )
    result = _lint(root, "SPAWN001")
    messages = [v.message for v in result.violations]
    assert len(messages) == 2
    assert any("clock" in m and "Callable" in m for m in messages)
    assert any("log" in m for m in messages)


def test_spawn001_recurses_into_project_classes(make_project):
    root = make_project(
        {
            "src/repro/core/config.py": """\
            from repro.core.knobs import Knobs

            class PacorConfig:
                def __init__(self, knobs: Knobs) -> None:
                    self.knobs = knobs
            """,
            "src/repro/core/knobs.py": """\
            import threading

            class Knobs:
                def __init__(self) -> None:
                    self.guard: threading.Lock = threading.Lock()
            """,
        }
    )
    result = _lint(root, "SPAWN001")
    assert len(result.violations) == 1
    assert "guard" in result.violations[0].message


def test_spawn001_accepts_plain_data_fields(make_project):
    root = make_project(
        {
            "src/repro/robustness/checkpoint.py": """\
            from typing import Dict, List, Optional

            class Checkpoint:
                def __init__(
                    self,
                    stage: str,
                    completed: List[str],
                    payload: Optional[Dict[str, int]] = None,
                ) -> None:
                    self.stage = stage
                    self.completed = completed
                    self.payload = payload or {}
            """,
        }
    )
    assert _lint(root, "SPAWN001").clean


# --------------------------------------------------------------------------
# PURE001 — kernel-core write discipline


def test_pure001_flags_param_attribute_writes(make_project):
    root = make_project(
        {
            "src/repro/routing/core/engine.py": """\
            def settle(space, occ, cid, net):
                space.blocked[cid] = 1
                occ.counter = net
            """,
        }
    )
    result = _lint(root, "PURE001")
    assert len(result.violations) == 2
    assert all(v.rule == "PURE001" for v in result.violations)


def test_pure001_flags_global_and_nonlocal(make_project):
    root = make_project(
        {
            "src/repro/routing/core/engine.py": """\
            _MEMO = {}

            def lookup(key):
                global _MEMO
                _MEMO = {key: 1}
                return _MEMO
            """,
        }
    )
    result = _lint(root, "PURE001")
    assert any("global" in v.message for v in result.violations)


def test_pure001_allows_scratch_arrays_and_space_module(make_project):
    root = make_project(
        {
            "src/repro/routing/core/engine.py": """\
            def relax(dist, parent, cid, d):
                dist[cid] = d
                parent[cid] = cid - 1
            """,
            "src/repro/routing/core/space.py": """\
            class SpaceCache:
                def mark_dirty(self, occ, cids):
                    occ._dirty = set(cids)
            """,
        }
    )
    assert _lint(root, "PURE001").clean
