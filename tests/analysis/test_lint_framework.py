"""pacorlint framework behaviour: suppressions, reporters, exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    BaselineEntry,
    registered_rules,
    render_human,
    render_json,
    run_lint,
)
from repro.analysis.lint.runner import main

_VIOLATING = """\
import time

def stamp():
    return time.time()
"""


def _write(make_project, body=_VIOLATING, rel="src/repro/routing/timing.py"):
    return make_project({rel: body})


def test_line_suppression(make_project):
    root = _write(
        make_project,
        """\
        import time

        def stamp():
            return time.time()  # pacorlint: disable=DET002
        """,
    )
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    assert result.clean
    assert result.suppressed == 1


def test_file_suppression(make_project):
    root = _write(
        make_project,
        """\
        # pacorlint: disable=DET002
        import time

        def stamp():
            return time.time() + time.monotonic()
        """,
    )
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    assert result.clean
    assert result.suppressed == 2


def test_disable_all_and_comma_lists(make_project):
    root = _write(
        make_project,
        """\
        import time

        def stamp():
            if True:
                raise ValueError("x")  # pacorlint: disable=ERR001,DET003
            return time.time()  # pacorlint: disable=all
        """,
    )
    result = run_lint(
        [root / "src"], root=root, rule_ids=["DET002", "ERR001"]
    )
    assert result.clean
    assert result.suppressed == 2


def test_suppression_marker_in_string_is_ignored(make_project):
    root = _write(
        make_project,
        """\
        import time

        def stamp():
            note = "# pacorlint: disable=DET002"
            return time.time(), note
        """,
    )
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    assert len(result.violations) == 1


def test_json_report_schema(make_project):
    root = _write(make_project)
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    doc = json.loads(render_json(result))
    assert doc["schema_version"] == 1
    assert doc["tool"] == "pacorlint"
    assert doc["files_checked"] == 1
    assert doc["rules"] == ["DET002"]
    assert doc["suppressed"] == 0
    (violation,) = doc["violations"]
    assert set(violation) == {"rule", "path", "line", "col", "message"}
    assert violation["rule"] == "DET002"
    assert violation["path"].endswith("timing.py")
    assert violation["line"] == 4


def test_human_report_format(make_project):
    root = _write(make_project)
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    text = render_human(result)
    assert "DET002" in text
    assert "timing.py:4:" in text
    assert "1 violation" in text


def test_unknown_rule_id_raises(make_project):
    root = _write(make_project)
    with pytest.raises(ValueError, match="unknown rule ids"):
        run_lint([root / "src"], root=root, rule_ids=["NOPE999"])


def test_runner_exit_codes(make_project, capsys):
    root = _write(make_project)
    target = str(root / "src")
    # 1: violations found.
    assert main([target, "--root", str(root), "--rules", "DET002"]) == 1
    # 0: clean (a rule the fixture cannot trip).
    assert main([target, "--root", str(root), "--rules", "CHK001"]) == 0
    # 2: usage/internal error (missing path, unknown rule).
    assert main([str(root / "nope"), "--root", str(root)]) == 2
    assert main([target, "--root", str(root), "--rules", "NOPE999"]) == 2
    capsys.readouterr()


def test_runner_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in registered_rules():
        assert rule_id in out


def test_cli_lint_subcommand(make_project, capsys, monkeypatch):
    from repro.cli import main as cli_main

    root = _write(make_project)
    monkeypatch.chdir(root)
    code = cli_main(["lint", "src", "--rules", "DET002", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert doc["violations"][0]["rule"] == "DET002"
    assert cli_main(["lint", "--list-rules"]) == 0
    capsys.readouterr()


def test_multiline_logical_line_suppression(make_project):
    # The directive sits on the *closing* physical line of a multi-line
    # call while the violation anchors on the opening line; a
    # physical-line interpretation would miss it.
    root = _write(
        make_project,
        """\
        import time

        def stamp():
            return time.time(
            )  # pacorlint: disable=DET002
        """,
    )
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    assert result.clean
    assert result.suppressed == 1


def test_compound_header_suppression_stops_at_colon(make_project):
    # A directive on the `def` header covers the header's logical line
    # only — it must not leak into the suite it introduces.
    root = _write(
        make_project,
        """\
        import time

        def stamp():  # pacorlint: disable=DET002
            return time.time()
        """,
    )
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    assert not result.clean
    assert result.suppressed == 0


def test_baseline_matches_without_line_numbers(make_project):
    root = _write(make_project)
    first = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    (violation,) = first.violations
    baseline = Baseline(
        entries=[
            BaselineEntry(
                rule=violation.rule,
                path=violation.path,
                message=violation.message,
                reason="legacy wall-clock read",
            )
        ]
    )
    result = run_lint(
        [root / "src"], root=root, rule_ids=["DET002"], baseline=baseline
    )
    assert result.clean
    assert result.violations == []
    ((matched, entry),) = result.baselined
    assert matched.message == violation.message
    assert entry.reason == "legacy wall-clock read"
    assert result.stale_baseline == []


def test_baseline_stale_detection_is_scoped_to_the_run(make_project):
    root = _write(make_project)
    rel = "src/repro/routing/timing.py"
    stale = BaselineEntry(
        rule="DET002", path=rel, message="no such violation", reason="old"
    )
    # ERR001 did not run and other.py was not linted: neither entry can
    # be judged by this invocation, so neither is reported stale.
    unran_rule = BaselineEntry(
        rule="ERR001", path=rel, message="x", reason="old"
    )
    unlinted_path = BaselineEntry(
        rule="DET002", path="src/repro/other.py", message="x", reason="old"
    )
    baseline = Baseline(entries=[stale, unran_rule, unlinted_path])
    result = run_lint(
        [root / "src"], root=root, rule_ids=["DET002"], baseline=baseline
    )
    assert result.stale_baseline == [stale]


def test_runner_baseline_workflow(make_project, capsys):
    root = _write(make_project)
    target = str(root / "src")
    baseline_path = root / ".pacorlint-baseline.json"

    # --update-baseline seeds the file, stamping new entries with a
    # TODO reason that the meta-test refuses to let ship.
    assert main(
        [target, "--root", str(root), "--rules", "DET002",
         "--update-baseline"]
    ) == 0
    doc = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert doc["tool"] == "pacorlint-baseline"
    assert doc["schema_version"] == 1
    (entry,) = doc["entries"]
    assert entry["reason"].startswith("TODO")

    # The repo-root baseline is picked up automatically; the run is now
    # clean.  --no-baseline ignores it and fails again.
    assert main([target, "--root", str(root), "--rules", "DET002"]) == 0
    assert main(
        [target, "--root", str(root), "--rules", "DET002", "--no-baseline"]
    ) == 1

    # A justified reason survives the next --update-baseline rewrite.
    entry["reason"] = "pinned by tests"
    baseline_path.write_text(
        json.dumps({**doc, "entries": [entry]}) + "\n", encoding="utf-8"
    )
    assert main(
        [target, "--root", str(root), "--rules", "DET002",
         "--update-baseline"]
    ) == 0
    doc = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert doc["entries"][0]["reason"] == "pinned by tests"
    capsys.readouterr()


def test_json_reporter_matches_golden_file(make_project):
    # Pins the schema-v1 document shape — violations, suppression
    # counts, baselined entries with reasons — against a checked-in
    # golden file so reporter drift is a reviewed diff, not a surprise
    # to downstream consumers.
    root = make_project(
        {
            "src/repro/routing/timing.py": """\
            import time

            def stamp():
                return time.time()

            def tick():
                return time.monotonic()

            def quiet():
                return time.time()  # pacorlint: disable=DET002
            """,
        }
    )
    baseline = Baseline(
        entries=[
            BaselineEntry(
                rule="DET002",
                path="src/repro/routing/timing.py",
                message=(
                    "time.monotonic reads the wall clock; only "
                    "robustness.budget and observability.tracing may "
                    "(checkpoint replay must be bit-identical)"
                ),
                reason="measurement epoch only; never feeds a routing "
                "decision",
            )
        ]
    )
    result = run_lint(
        [root / "src"], root=root, rule_ids=["DET002"], baseline=baseline
    )
    golden = Path(__file__).parent / "golden" / "lint_report.json"
    assert render_json(result) + "\n" == golden.read_text(encoding="utf-8")
