"""pacorlint framework behaviour: suppressions, reporters, exit codes."""

import json

import pytest

from repro.analysis.lint import (
    registered_rules,
    render_human,
    render_json,
    run_lint,
)
from repro.analysis.lint.runner import main

_VIOLATING = """\
import time

def stamp():
    return time.time()
"""


def _write(make_project, body=_VIOLATING, rel="src/repro/routing/timing.py"):
    return make_project({rel: body})


def test_line_suppression(make_project):
    root = _write(
        make_project,
        """\
        import time

        def stamp():
            return time.time()  # pacorlint: disable=DET002
        """,
    )
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    assert result.clean
    assert result.suppressed == 1


def test_file_suppression(make_project):
    root = _write(
        make_project,
        """\
        # pacorlint: disable=DET002
        import time

        def stamp():
            return time.time() + time.monotonic()
        """,
    )
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    assert result.clean
    assert result.suppressed == 2


def test_disable_all_and_comma_lists(make_project):
    root = _write(
        make_project,
        """\
        import time

        def stamp():
            if True:
                raise ValueError("x")  # pacorlint: disable=ERR001,DET003
            return time.time()  # pacorlint: disable=all
        """,
    )
    result = run_lint(
        [root / "src"], root=root, rule_ids=["DET002", "ERR001"]
    )
    assert result.clean
    assert result.suppressed == 2


def test_suppression_marker_in_string_is_ignored(make_project):
    root = _write(
        make_project,
        """\
        import time

        def stamp():
            note = "# pacorlint: disable=DET002"
            return time.time(), note
        """,
    )
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    assert len(result.violations) == 1


def test_json_report_schema(make_project):
    root = _write(make_project)
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    doc = json.loads(render_json(result))
    assert doc["schema_version"] == 1
    assert doc["tool"] == "pacorlint"
    assert doc["files_checked"] == 1
    assert doc["rules"] == ["DET002"]
    assert doc["suppressed"] == 0
    (violation,) = doc["violations"]
    assert set(violation) == {"rule", "path", "line", "col", "message"}
    assert violation["rule"] == "DET002"
    assert violation["path"].endswith("timing.py")
    assert violation["line"] == 4


def test_human_report_format(make_project):
    root = _write(make_project)
    result = run_lint([root / "src"], root=root, rule_ids=["DET002"])
    text = render_human(result)
    assert "DET002" in text
    assert "timing.py:4:" in text
    assert "1 violation" in text


def test_unknown_rule_id_raises(make_project):
    root = _write(make_project)
    with pytest.raises(ValueError, match="unknown rule ids"):
        run_lint([root / "src"], root=root, rule_ids=["NOPE999"])


def test_runner_exit_codes(make_project, capsys):
    root = _write(make_project)
    target = str(root / "src")
    # 1: violations found.
    assert main([target, "--root", str(root), "--rules", "DET002"]) == 1
    # 0: clean (a rule the fixture cannot trip).
    assert main([target, "--root", str(root), "--rules", "CHK001"]) == 0
    # 2: usage/internal error (missing path, unknown rule).
    assert main([str(root / "nope"), "--root", str(root)]) == 2
    assert main([target, "--root", str(root), "--rules", "NOPE999"]) == 2
    capsys.readouterr()


def test_runner_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in registered_rules():
        assert rule_id in out


def test_cli_lint_subcommand(make_project, capsys, monkeypatch):
    from repro.cli import main as cli_main

    root = _write(make_project)
    monkeypatch.chdir(root)
    code = cli_main(["lint", "src", "--rules", "DET002", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert doc["violations"][0]["rule"] == "DET002"
    assert cli_main(["lint", "--list-rules"]) == 0
    capsys.readouterr()
