"""Tests for wirelength lower bounds and the quality ratio."""

import pytest

from repro import run_pacor, s1, s3
from repro.analysis.stats import (
    design_lower_bounds,
    escape_lower_bound,
    quality_ratio,
    steiner_lower_bound,
)
from repro.geometry import Point


class TestSteinerLowerBound:
    def test_degenerate(self):
        assert steiner_lower_bound([]) == 0
        assert steiner_lower_bound([Point(3, 3)]) == 0

    def test_two_points_is_distance(self):
        assert steiner_lower_bound([Point(0, 0), Point(4, 3)]) == 7

    def test_collinear_points(self):
        points = [Point(0, 0), Point(5, 0), Point(10, 0)]
        assert steiner_lower_bound(points) == 10

    def test_square_corners(self):
        # RSMT of a 4x4 square's corners is 12; bound must not exceed it.
        points = [Point(0, 0), Point(4, 0), Point(0, 4), Point(4, 4)]
        bound = steiner_lower_bound(points)
        assert 8 <= bound <= 12

    def test_bound_never_exceeds_mst(self):
        import random

        rng = random.Random(5)
        for _ in range(20):
            points = [
                Point(rng.randrange(30), rng.randrange(30)) for _ in range(6)
            ]
            points = list(dict.fromkeys(points))
            from repro.routing.mst import manhattan_mst
            from repro.geometry.point import manhattan

            mst = sum(
                manhattan(points[a], points[b])
                for a, b in manhattan_mst(points)
            )
            assert steiner_lower_bound(points) <= mst


class TestEscapeLowerBound:
    def test_empty(self):
        assert escape_lower_bound([], [Point(0, 0)]) == 0
        assert escape_lower_bound([Point(1, 1)], []) == 0

    def test_nearest_pin_wins(self):
        points = [Point(5, 5)]
        pins = [Point(0, 5), Point(9, 5), Point(5, 6)]
        assert escape_lower_bound(points, pins) == 1


class TestDesignBounds:
    def test_s1_bounds_positive(self):
        bounds = design_lower_bounds(s1())
        assert bounds.total > 0
        assert all(v >= 0 for v in bounds.internal.values())
        assert all(v >= 0 for v in bounds.escape.values())

    def test_actual_solution_respects_bound(self):
        design = s1()
        result = run_pacor(design)
        assert result.completion_rate == 1.0
        bounds = design_lower_bounds(design)
        assert result.total_length >= bounds.total

    def test_quality_ratio_at_least_one_when_complete(self):
        design = s3()
        result = run_pacor(design)
        assert result.completion_rate == 1.0
        ratio = quality_ratio(design, result)
        assert ratio >= 1.0
        assert ratio < 6.0  # sanity: not wildly wasteful
