"""Unit tests for the cross-module project graph the dataflow rules share."""

from repro.analysis.graph import build_graph
from repro.analysis.lint import collect_files


def _graph(root):
    files = collect_files([root / "src"], root)
    return build_graph(files)


def test_symbols_bindings_and_alias_chains(make_project):
    root = make_project(
        {
            "src/repro/pkg/__init__.py": """\
            from repro.pkg.impl import helper
            """,
            "src/repro/pkg/impl.py": """\
            def helper():
                return 1
            """,
            "src/repro/user.py": """\
            from repro.pkg import helper

            def call():
                return helper()
            """,
        }
    )
    graph = _graph(root)
    assert "repro.pkg.impl.helper" in graph.functions
    # The re-export through the package façade resolves to the impl.
    assert graph.calls["repro.user.call"] == {"repro.pkg.impl.helper"}


def test_relative_imports_resolve(make_project):
    root = make_project(
        {
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/a.py": """\
            def leaf():
                return 0
            """,
            "src/repro/pkg/b.py": """\
            from .a import leaf

            def caller():
                return leaf()
            """,
        }
    )
    graph = _graph(root)
    assert graph.calls["repro.pkg.b.caller"] == {"repro.pkg.a.leaf"}


def test_self_method_and_constructor_typed_locals(make_project):
    root = make_project(
        {
            "src/repro/mod.py": """\
            class Worker:
                def run(self):
                    return self.step()

                def step(self):
                    return 1

            def drive():
                w = Worker()
                return w.run()
            """,
        }
    )
    graph = _graph(root)
    assert graph.calls["repro.mod.Worker.run"] == {"repro.mod.Worker.step"}
    # drive() gets an edge for the constructor call and the method call.
    assert "repro.mod.Worker.run" in graph.calls["repro.mod.drive"]


def test_inherited_methods_resolve_through_bases(make_project):
    root = make_project(
        {
            "src/repro/base.py": """\
            class Base:
                def shared(self):
                    return 1
            """,
            "src/repro/child.py": """\
            from repro.base import Base

            class Child(Base):
                def run(self):
                    return self.shared()
            """,
        }
    )
    graph = _graph(root)
    assert graph.calls["repro.child.Child.run"] == {"repro.base.Base.shared"}


def test_thread_targets_and_dispatch_table_references(make_project):
    root = make_project(
        {
            "src/repro/mod.py": """\
            import threading

            def _loop():
                return 1

            def _stage_a():
                return 2

            def start():
                return threading.Thread(target=_loop)

            def dispatch(name):
                table = {"a": _stage_a}
                return table[name]()
            """,
        }
    )
    graph = _graph(root)
    assert "repro.mod._loop" in graph.thread_targets
    # Load-context references (dispatch tables) become call edges.
    assert "repro.mod._stage_a" in graph.calls["repro.mod.dispatch"]
    # But a mere dict reference is not a thread target.
    assert "repro.mod._stage_a" not in graph.thread_targets


def test_reachability_walk(make_project):
    root = make_project(
        {
            "src/repro/mod.py": """\
            def entry():
                return middle()

            def middle():
                return leaf()

            def leaf():
                return 0

            def unreachable():
                return leaf()
            """,
        }
    )
    graph = _graph(root)
    reached = graph.reachable(["repro.mod.entry"])
    assert {"repro.mod.entry", "repro.mod.middle", "repro.mod.leaf"} <= reached
    assert "repro.mod.unreachable" not in reached


def test_mutable_globals_and_self_attr_types(make_project):
    root = make_project(
        {
            "src/repro/store.py": """\
            class Store:
                pass
            """,
            "src/repro/svc.py": """\
            from repro.store import Store

            CACHE = {}
            LIMIT = 3

            class Service:
                def __init__(self):
                    self.store = Store()
            """,
        }
    )
    graph = _graph(root)
    module = graph.modules["repro.svc"]
    assert "CACHE" in module.mutable_globals
    assert "LIMIT" not in module.mutable_globals
    info = graph.classes["repro.svc.Service"]
    types = graph.self_attr_types("repro.svc", info)
    assert graph.canonical(types["store"]) == "repro.store.Store"
