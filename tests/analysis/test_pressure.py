"""Tests for the pressure-propagation delay model."""

import pytest

from repro import run_pacor, s1, s3
from repro.analysis import DelayModel, cluster_skews, worst_skew
from repro.core import PacorConfig


class TestDelayModel:
    def test_default_is_quadratic(self):
        model = DelayModel(tau0=1.0)
        assert model.delay(0) == 0.0
        assert model.delay(3) == 9.0
        assert model.delay(10) == 100.0

    def test_linear_limit(self):
        model = DelayModel(tau0=2.0, alpha=1.0)
        assert model.delay(5) == 10.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            DelayModel().delay(-1)

    def test_monotone_in_length(self):
        model = DelayModel()
        delays = [model.delay(n) for n in range(20)]
        assert delays == sorted(delays)


class TestClusterSkews:
    def test_matched_clusters_have_tiny_skew(self):
        design = s1()
        result = run_pacor(design)
        model = DelayModel(tau0=1.0, alpha=1.0)
        skews = cluster_skews(design, result, model)
        assert skews  # S1 has two multi-valve clusters
        for skew in skews:
            if skew.matched:
                # Linear model: skew == length mismatch <= delta.
                assert skew.skew <= result.delta

    def test_quadratic_model_amplifies_long_channels(self):
        design = s3()
        result = run_pacor(design)
        linear = worst_skew(design, result, DelayModel(tau0=1.0, alpha=1.0))
        quadratic = worst_skew(design, result, DelayModel(tau0=1.0, alpha=2.0))
        # With channels longer than one unit, quadratic skew dominates.
        assert quadratic >= linear

    def test_arrival_per_valve(self):
        design = s1()
        result = run_pacor(design)
        skews = cluster_skews(design, result)
        for skew in skews:
            net = next(n for n in result.nets if n.net_id == skew.net_id)
            assert set(skew.arrival) == set(net.valve_ids)
            assert all(t >= 0 for t in skew.arrival.values())

    def test_matched_clusters_beat_unmatched_on_skew(self):
        """The point of the paper: matching bounds switching skew."""
        design = s3()
        matched_result = run_pacor(design)
        unmatched_result = run_pacor(design, PacorConfig(detour_stage="none"))
        model = DelayModel(tau0=1.0, alpha=1.0)
        matched_sk = worst_skew(design, matched_result, model, matched_only=True)
        # Matched clusters are within delta=1 by construction.
        assert matched_sk <= 1.0

    def test_singletons_ignored(self):
        design = s1()
        result = run_pacor(design)
        skews = cluster_skews(design, result)
        net_ids = {s.net_id for s in skews}
        singleton_nets = {
            n.net_id for n in result.nets if len(n.valve_ids) == 1
        }
        assert not net_ids & singleton_nets
