"""Tests for metric aggregation and report tables."""

import pytest

from repro.analysis import compare_methods, format_table, table1_rows, table2_rows
from repro.analysis.report import table2_headers
from repro.core.result import NetReport, PacorResult
from repro.designs import s1
from repro.geometry import Point


def result(method, design="D", matched=1, mlen=10, extra_len=10, runtime=1.0):
    """Build a result whose aggregates come from real stub nets.

    ``matched`` LM nets of length ``mlen`` each, plus one ordinary net of
    length ``extra_len``.
    """
    nets = []
    for i in range(matched):
        nets.append(
            NetReport(
                net_id=i,
                origin_cluster=i,
                valve_ids=[2 * i, 2 * i + 1],
                length_matching=True,
                routed=True,
                matched=True,
                channel_length=mlen,
                pin=Point(i, 0),
            )
        )
    nets.append(
        NetReport(
            net_id=99,
            origin_cluster=99,
            valve_ids=[98],
            length_matching=False,
            routed=True,
            channel_length=extra_len,
            pin=Point(9, 9),
        )
    )
    return PacorResult(
        design_name=design,
        method=method,
        delta=1,
        n_valves=2 * matched + 1,
        n_lm_clusters=max(matched, 1),
        nets=nets,
        runtime_s=runtime,
    )


class TestCompareMethods:
    def test_reference_is_unity(self):
        results = {
            "PACOR": [result("PACOR")],
            "w/o Sel": [result("w/o Sel", matched=2, mlen=10, extra_len=20, runtime=2.0)],
        }
        comps = {c.method: c for c in compare_methods(results)}
        assert comps["PACOR"].matched_ratio == pytest.approx(1.0)
        assert comps["PACOR"].total_length_ratio == pytest.approx(1.0)
        assert comps["w/o Sel"].matched_ratio == pytest.approx(2.0)
        assert comps["w/o Sel"].matched_length_ratio == pytest.approx(2.0)
        assert comps["w/o Sel"].total_length_ratio == pytest.approx(2.0)
        assert comps["w/o Sel"].runtime_ratio == pytest.approx(2.0)

    def test_missing_reference_rejected(self):
        with pytest.raises(ValueError):
            compare_methods({"w/o Sel": [result("w/o Sel")]})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compare_methods({"PACOR": [result("PACOR")], "w/o Sel": []})

    def test_zero_reference_skipped(self):
        results = {
            "PACOR": [result("PACOR", matched=0)],
            "w/o Sel": [result("w/o Sel", matched=1)],
        }
        comps = {c.method: c for c in compare_methods(results)}
        assert comps["w/o Sel"].matched_ratio == 0.0  # no valid pairs


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["A", "Blong"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert "-" in lines[1]

    def test_table1_rows(self):
        rows = table1_rows([s1()])
        assert rows[0][0] == "S1"
        assert rows[0][1] == "12x12"
        assert rows[0][2] == 5

    def test_table2_rows_and_headers(self):
        results = {
            "PACOR": [result("PACOR", design="S1")],
            "w/o Sel": [result("w/o Sel", design="S1")],
            "Detour First": [result("Detour First", design="S1")],
        }
        headers = table2_headers()
        rows = table2_rows(results)
        assert len(rows) == 1
        assert len(rows[0]) == len(headers)
        assert rows[0][0] == "S1"

    def test_table2_requires_known_method(self):
        with pytest.raises(ValueError):
            table2_rows({"bogus": []})
