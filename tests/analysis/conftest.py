"""Fixtures for the pacorlint test suite.

``make_project`` builds a throwaway mini-repo under ``tmp_path`` whose
layout mirrors the real one (``src/repro/<pkg>/...`` plus optional
``docs/paper_mapping.md``), because the rules scope themselves by the
dotted module name derived from that layout.
"""

import textwrap
from typing import Callable, Dict, Optional

import pytest


@pytest.fixture
def make_project(tmp_path) -> Callable:
    """Return a builder writing fixture files into a fresh repo root."""

    def _make(
        files: Dict[str, str],
        mapping: Optional[str] = None,
    ):
        (tmp_path / "pyproject.toml").write_text(
            '[project]\nname = "fixture"\n', encoding="utf-8"
        )
        for rel, body in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(body), encoding="utf-8")
        if mapping is not None:
            docs = tmp_path / "docs"
            docs.mkdir(exist_ok=True)
            (docs / "paper_mapping.md").write_text(
                textwrap.dedent(mapping), encoding="utf-8"
            )
        return tmp_path

    return _make
