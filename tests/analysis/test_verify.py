"""Tests for the independent solution verifier."""

import pytest

from repro.analysis import VerificationError, network_lengths, verify_result
from repro.core.result import NetReport, PacorResult, segments_of_path
from repro.designs import Design
from repro.geometry import Point
from repro.grid import RoutingGrid
from repro.valves import ActivationSequence, Valve


def straight_cells(a, b):
    (ax, ay), (bx, by) = a, b
    if ay == by:
        step = 1 if bx >= ax else -1
        return [Point(x, ay) for x in range(ax, bx + step, step)]
    step = 1 if by >= ay else -1
    return [Point(ax, y) for y in range(ay, by + step, step)]


def make_design():
    grid = RoutingGrid(10, 10)
    valves = [
        Valve(0, Point(3, 5), ActivationSequence("01")),
        Valve(1, Point(7, 5), ActivationSequence("01")),
    ]
    return Design(
        name="V",
        grid=grid,
        valves=valves,
        lm_groups=[[0, 1]],
        control_pins=[Point(5, 0), Point(0, 0)],
    )


def good_net():
    # Valves at (3,5) and (7,5); root (5,5); escape (5,5)->(5,0).
    cells = (
        straight_cells((3, 5), (5, 5))
        + straight_cells((7, 5), (5, 5))
        + straight_cells((5, 5), (5, 0))
    )
    segs = (
        segments_of_path(straight_cells((3, 5), (5, 5)))
        + segments_of_path(straight_cells((7, 5), (5, 5)))
        + segments_of_path(straight_cells((5, 5), (5, 0)))
    )
    return NetReport(
        net_id=0,
        origin_cluster=0,
        valve_ids=[0, 1],
        length_matching=True,
        routed=True,
        pin=Point(5, 0),
        cells=frozenset(cells),
        segments=frozenset(segs),
        channel_length=len(frozenset(segs)),
        matched=True,
        mismatch=0,
    )


def make_result(nets):
    return PacorResult(
        design_name="V",
        method="PACOR",
        delta=1,
        n_valves=2,
        n_lm_clusters=1,
        nets=nets,
    )


class TestNetworkLengths:
    def test_distances_follow_segments_not_adjacency(self):
        # Two parallel channels of one net, adjacent but not connected.
        a = straight_cells((0, 0), (5, 0))
        b = straight_cells((5, 1), (0, 1))
        segs = segments_of_path(a) + segments_of_path(b) + [
            (Point(5, 0), Point(5, 1))
        ]
        lengths = network_lengths(segs, Point(0, 0), [Point(0, 1)])
        # Must go around via (5,0)-(5,1), not hop across adjacency.
        assert lengths[Point(0, 1)] == 11

    def test_unreachable_target_is_none(self):
        segs = segments_of_path(straight_cells((0, 0), (2, 0)))
        lengths = network_lengths(segs, Point(0, 0), [Point(9, 9)])
        assert lengths[Point(9, 9)] is None

    def test_origin_without_segments(self):
        lengths = network_lengths([], Point(0, 0), [Point(0, 0), Point(1, 0)])
        assert lengths[Point(0, 0)] == 0
        assert lengths[Point(1, 0)] is None


class TestVerifyResult:
    def test_valid_solution_passes(self):
        design = make_design()
        result = make_result([good_net()])
        assert verify_result(design, result) == []

    def test_crossing_nets_rejected(self):
        design = make_design()
        net_a = good_net()
        net_b = NetReport(
            net_id=1,
            origin_cluster=1,
            valve_ids=[],
            length_matching=False,
            routed=False,
            cells=frozenset([Point(5, 3)]),  # overlaps net_a's escape
        )
        with pytest.raises(VerificationError, match="shared"):
            verify_result(design, make_result([net_a, net_b]))

    def test_obstacle_crossing_rejected(self):
        design = make_design()
        design.grid.set_obstacle(Point(5, 3))
        with pytest.raises(VerificationError, match="obstacle"):
            verify_result(design, make_result([good_net()]))

    def test_non_candidate_pin_rejected(self):
        design = make_design()
        net = good_net()
        object.__setattr__ if False else None
        net.pin = Point(9, 9)
        net.cells = net.cells | {Point(9, 9)}
        with pytest.raises(VerificationError, match="non-candidate"):
            verify_result(design, make_result([net]))

    def test_missing_pin_rejected(self):
        design = make_design()
        net = good_net()
        net.pin = None
        with pytest.raises(VerificationError, match="no pin"):
            verify_result(design, make_result([net]))

    def test_pin_reuse_rejected(self):
        design = make_design()
        design.valves.append(Valve(2, Point(1, 1), ActivationSequence("10")))
        net_a = good_net()
        net_b = NetReport(
            net_id=1,
            origin_cluster=1,
            valve_ids=[2],
            length_matching=False,
            routed=True,
            pin=Point(5, 0),  # same pin as net_a
            cells=frozenset([Point(1, 1)]),
        )
        with pytest.raises(VerificationError, match="two nets"):
            verify_result(design, make_result([net_a, net_b]))

    def test_disconnected_valve_rejected(self):
        design = make_design()
        net = good_net()
        # Remove the segment joining valve 1's arm to the root.
        seg = (Point(6, 5), Point(7, 5))
        net.segments = frozenset(s for s in net.segments if s != seg)
        with pytest.raises(VerificationError, match="disconnected"):
            verify_result(design, make_result([net]))

    def test_incompatible_valves_rejected(self):
        design = make_design()
        design.valves[1] = Valve(1, Point(7, 5), ActivationSequence("10"))
        design.lm_groups = []
        with pytest.raises(VerificationError, match="incompatible"):
            verify_result(design, make_result([good_net()]))

    def test_false_matching_claim_rejected(self):
        design = make_design()
        net = good_net()
        # Shift the root of the claimed-matched net: lengthen one arm.
        cells = (
            straight_cells((3, 5), (4, 5))
            + straight_cells((7, 5), (4, 5))
            + straight_cells((4, 5), (4, 0))
        )
        segs = (
            segments_of_path(straight_cells((3, 5), (4, 5)))
            + segments_of_path(straight_cells((7, 5), (4, 5)))
            + segments_of_path(straight_cells((4, 5), (4, 0)))
        )
        net.cells = frozenset(cells)
        net.segments = frozenset(segs)
        net.pin = Point(0, 0)
        with pytest.raises(VerificationError):
            verify_result(design, make_result([net]))

    def test_false_matching_tolerated_when_not_strict(self):
        design = make_design()
        design.control_pins.append(Point(4, 0))
        net = good_net()
        cells = (
            straight_cells((3, 5), (4, 5))
            + straight_cells((7, 5), (4, 5))
            + straight_cells((4, 5), (4, 0))
        )
        segs = (
            segments_of_path(straight_cells((3, 5), (4, 5)))
            + segments_of_path(straight_cells((7, 5), (4, 5)))
            + segments_of_path(straight_cells((4, 5), (4, 0)))
        )
        net.cells = frozenset(cells)
        net.segments = frozenset(segs)
        net.pin = Point(4, 0)
        notes = verify_result(design, make_result([net]), strict_matching=False)
        assert any("spread" in n for n in notes)

    def test_unrouted_net_noted(self):
        design = make_design()
        net = good_net()
        net.routed = False
        notes = verify_result(design, make_result([net]))
        assert any("unrouted" in n for n in notes)
