"""Tests for congestion analysis."""

import pytest

from repro import run_pacor, s1, s3
from repro.analysis.congestion import congestion_map, congestion_svg


def test_tile_validation():
    design = s1()
    result = run_pacor(design)
    with pytest.raises(ValueError):
        congestion_map(design, result, tile=0)


def test_map_dimensions():
    design = s1()  # 12x12
    result = run_pacor(design)
    cmap = congestion_map(design, result, tile=8)
    assert (cmap.tiles_x, cmap.tiles_y) == (2, 2)
    assert set(cmap.occupancy) == {(0, 0), (1, 0), (0, 1), (1, 1)}


def test_occupancy_in_unit_range():
    design = s3()
    result = run_pacor(design)
    cmap = congestion_map(design, result, tile=8)
    for value in cmap.occupancy.values():
        assert 0.0 <= value <= 1.0
    assert 0.0 < cmap.utilisation < 1.0


def test_utilisation_counts_all_net_cells():
    design = s1()
    result = run_pacor(design)
    cmap = congestion_map(design, result, tile=12)  # one tile
    total_cells = sum(len(n.cells) for n in result.nets)
    free = sum(
        1
        for c in design.grid.extent().cells()
        if design.grid.is_free(c)
    )
    assert cmap.utilisation == pytest.approx(total_cells / free)


def test_hotspots_sorted_desc():
    design = s3()
    result = run_pacor(design)
    cmap = congestion_map(design, result, tile=8)
    hot = cmap.hotspots(threshold=0.0)
    values = [cmap.occupancy[t] for t in hot]
    assert values == sorted(values, reverse=True)
    assert cmap.max_occupancy() == (values[0] if values else 0.0)


def test_svg_renders():
    design = s3()
    result = run_pacor(design)
    svg = congestion_svg(design, result)
    assert svg.startswith("<svg")
    assert "rgb(255," in svg
