"""Tests for selection costs (Eqs. 2-4)."""

import pytest

from repro.dme.tree import CandidateTree, TopologyNode, TreeEdge
from repro.geometry import Point
from repro.selection import edge_overlap_cost, mismatch_costs, tree_overlap_cost


def straight_tree(cluster_id, a, b, root):
    """A two-sink tree with the root between the sinks."""
    leaf_a = TopologyNode(sink=0, position=Point(*a))
    leaf_b = TopologyNode(sink=1, position=Point(*b))
    node = TopologyNode(children=[leaf_a, leaf_b], position=Point(*root))
    return CandidateTree(cluster_id, node)


class TestMismatchCosts:
    def test_zero_mismatch_everywhere(self):
        t = straight_tree(0, (0, 0), (4, 0), (2, 0))
        assert mismatch_costs([t, t]) == [0.0, 0.0]

    def test_normalised_to_worst(self):
        balanced = straight_tree(0, (0, 0), (4, 0), (2, 0))  # dL = 0
        skewed = straight_tree(1, (0, 0), (4, 0), (1, 0))  # dL = 2
        costs = mismatch_costs([balanced, skewed], lam=0.1)
        assert costs[0] == 0.0
        assert costs[1] == pytest.approx(-0.1)

    def test_intermediate_mismatch_scales_linearly(self):
        t0 = straight_tree(0, (0, 0), (8, 0), (4, 0))  # dL = 0
        t1 = straight_tree(1, (0, 0), (8, 0), (3, 0))  # dL = 2
        t2 = straight_tree(2, (0, 0), (8, 0), (2, 0))  # dL = 4
        costs = mismatch_costs([t0, t1, t2], lam=0.1)
        assert costs == [0.0, pytest.approx(-0.05), pytest.approx(-0.1)]

    def test_empty_input(self):
        assert mismatch_costs([]) == []


class TestEdgeOverlapCost:
    def test_disjoint_edges_zero(self):
        a = TreeEdge(Point(0, 0), Point(2, 0), 2)
        b = TreeEdge(Point(0, 5), Point(2, 5), 2)
        assert edge_overlap_cost(a, b) == 0.0

    def test_identical_edges_cost_one(self):
        a = TreeEdge(Point(0, 0), Point(3, 0), 3)
        assert edge_overlap_cost(a, a) == pytest.approx(1.0)

    def test_contained_edge_normalised_by_smaller(self):
        big = TreeEdge(Point(0, 0), Point(9, 9), 18)
        small = TreeEdge(Point(2, 2), Point(4, 2), 2)
        # small's bb (3 cells) lies fully inside big's bb.
        assert edge_overlap_cost(big, small) == pytest.approx(1.0)

    def test_partial_overlap_fraction(self):
        a = TreeEdge(Point(0, 0), Point(3, 0), 3)  # bb 4 cells
        b = TreeEdge(Point(2, 0), Point(5, 0), 3)  # bb 4 cells, 2 shared
        assert edge_overlap_cost(a, b) == pytest.approx(0.5)

    def test_symmetry(self):
        a = TreeEdge(Point(0, 0), Point(5, 3), 8)
        b = TreeEdge(Point(3, 1), Point(8, 2), 6)
        assert edge_overlap_cost(a, b) == pytest.approx(edge_overlap_cost(b, a))


class TestTreeOverlapCost:
    def test_disjoint_trees_zero(self):
        a = straight_tree(0, (0, 0), (4, 0), (2, 0))
        b = straight_tree(1, (0, 10), (4, 10), (2, 10))
        assert tree_overlap_cost(a, b) == 0.0

    def test_overlapping_trees_negative(self):
        a = straight_tree(0, (0, 0), (4, 0), (2, 0))
        b = straight_tree(1, (0, 0), (4, 0), (2, 0))
        cost = tree_overlap_cost(a, b, lam=0.1)
        assert cost < 0
        # Identical pairs contribute 1.0 each; the two cross pairs share
        # only the root cell of a 3-cell box: 2 * 1.0 + 2 * (1/3).
        assert cost == pytest.approx(-(1 - 0.1) * (2.0 + 2.0 / 3.0))

    def test_lambda_weighting(self):
        a = straight_tree(0, (0, 0), (4, 0), (2, 0))
        b = straight_tree(1, (2, 0), (6, 0), (4, 0))
        c01 = tree_overlap_cost(a, b, lam=0.1)
        c05 = tree_overlap_cost(a, b, lam=0.5)
        assert c01 < c05 < 0
