"""Tests for the MWCP instance and its three solvers."""

import itertools

import pytest

from repro.dme.tree import CandidateTree, TopologyNode
from repro.geometry import Point
from repro.selection import (
    SelectionInstance,
    build_clique_graph,
    solve_exact,
    solve_greedy,
    solve_local_search,
)


def tree(cluster_id, a, b, root):
    leaf_a = TopologyNode(sink=0, position=Point(*a))
    leaf_b = TopologyNode(sink=1, position=Point(*b))
    return CandidateTree(
        cluster_id, TopologyNode(children=[leaf_a, leaf_b], position=Point(*root))
    )


@pytest.fixture
def two_cluster_instance():
    """Two clusters, each with an 'overlapping' and an 'avoiding' candidate.

    Cluster 0 sits on row 0; cluster 1's first candidate collides with it,
    the second candidate lives on row 10 (zero overlap).
    """
    c0 = [tree(0, (0, 0), (8, 0), (4, 0))]
    c1 = [
        tree(1, (0, 0), (8, 0), (4, 0)),  # full collision with c0
        tree(1, (0, 10), (8, 10), (4, 10)),  # disjoint
    ]
    return SelectionInstance([c0, c1])


def brute_force_optimum(instance):
    ranges = [range(len(c)) for c in instance.clusters]
    return max(
        (instance.objective(list(choice)), list(choice))
        for choice in itertools.product(*ranges)
    )


def test_instance_rejects_empty_cluster():
    with pytest.raises(ValueError):
        SelectionInstance([[]])


def test_objective_requires_full_choice(two_cluster_instance):
    with pytest.raises(ValueError):
        two_cluster_instance.objective([0])


def test_objective_counts_node_and_pair_weights(two_cluster_instance):
    inst = two_cluster_instance
    collide = inst.objective([0, 0])
    avoid = inst.objective([0, 1])
    assert avoid > collide
    assert avoid == pytest.approx(0.0)


def test_greedy_picks_disjoint_candidate(two_cluster_instance):
    result = solve_greedy(two_cluster_instance)
    assert result.choice == [0, 1]


def test_local_search_improves_bad_start(two_cluster_instance):
    result = solve_local_search(two_cluster_instance, start=[0, 0])
    assert result.choice == [0, 1]
    assert result.objective == pytest.approx(0.0)


def test_exact_matches_brute_force_small_random():
    # Three clusters x three candidates in a crowded strip.
    rows = [0, 3, 6]
    clusters = []
    for ci, row in enumerate(rows):
        cands = [
            tree(ci, (0, row), (8, row), (4, row)),
            tree(ci, (0, row + 1), (8, row + 1), (4, row + 1)),
            tree(ci, (2, row + 2), (10, row + 2), (6, row + 2)),
        ]
        clusters.append(cands)
    inst = SelectionInstance(clusters)
    result = solve_exact(inst)
    assert result.optimal
    best_value, _ = brute_force_optimum(inst)
    assert result.objective == pytest.approx(best_value)


def test_exact_at_least_as_good_as_heuristics(two_cluster_instance):
    exact = solve_exact(two_cluster_instance)
    greedy = solve_greedy(two_cluster_instance)
    local = solve_local_search(two_cluster_instance)
    assert exact.objective >= greedy.objective - 1e-9
    assert exact.objective >= local.objective - 1e-9


def test_exact_respects_node_budget(two_cluster_instance):
    result = solve_exact(two_cluster_instance, max_nodes=0)
    assert not result.optimal
    assert len(result.choice) == 2  # still returns the incumbent


def test_selected_trees_roundtrip(two_cluster_instance):
    result = solve_exact(two_cluster_instance)
    trees = two_cluster_instance.selected_trees(result.choice)
    assert [t.cluster_id for t in trees] == [0, 1]


def test_clique_graph_structure(two_cluster_instance):
    g = build_clique_graph(two_cluster_instance)
    assert g.number_of_nodes() == 3
    # Candidates of the same cluster are never adjacent.
    assert not g.has_edge(1, 2)
    assert g.has_edge(0, 1) and g.has_edge(0, 2)
    assert g.nodes[0]["cluster"] == 0
    assert g.edges[0, 1]["weight"] < 0
    assert g.edges[0, 2]["weight"] == pytest.approx(0.0)


def test_single_cluster_trivial():
    inst = SelectionInstance([[tree(0, (0, 0), (4, 0), (2, 0))]])
    for solver in (solve_exact, solve_greedy, solve_local_search):
        result = solver(inst)
        assert result.choice == [0]
        assert result.objective == pytest.approx(0.0)


def test_exact_on_larger_instance_beats_greedy_or_ties():
    # A grid of clusters with randomised candidate placements.
    import random

    rng = random.Random(7)
    clusters = []
    for ci in range(6):
        cands = []
        for _ in range(3):
            x = rng.randrange(0, 12)
            y = rng.randrange(0, 12)
            cands.append(tree(ci, (x, y), (x + 6, y), (x + 3, y)))
        clusters.append(cands)
    inst = SelectionInstance(clusters)
    exact = solve_exact(inst)
    greedy = solve_greedy(inst)
    assert exact.optimal
    assert exact.objective >= greedy.objective - 1e-9
    value, choice = brute_force_optimum(inst)
    assert exact.objective == pytest.approx(value)
