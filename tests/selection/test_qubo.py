"""Tests for the QUBO formulation and annealing solver."""

import numpy as np
import pytest

from repro.dme.tree import CandidateTree, TopologyNode
from repro.geometry import Point
from repro.selection import (
    SelectionInstance,
    build_qubo,
    solve_exact,
    solve_qubo_annealing,
)
from repro.selection.qubo import _PICK_REWARD, _SAME_CLUSTER_PENALTY, _energy


def tree(cluster_id, a, b, root):
    leaf_a = TopologyNode(sink=0, position=Point(*a))
    leaf_b = TopologyNode(sink=1, position=Point(*b))
    return CandidateTree(
        cluster_id, TopologyNode(children=[leaf_a, leaf_b], position=Point(*root))
    )


@pytest.fixture
def instance():
    c0 = [tree(0, (0, 0), (8, 0), (4, 0))]
    c1 = [
        tree(1, (0, 0), (8, 0), (4, 0)),  # collides with c0's candidate
        tree(1, (0, 10), (8, 10), (4, 10)),  # disjoint
    ]
    return SelectionInstance([c0, c1])


class TestBuildQubo:
    def test_matrix_shape_and_symmetry(self, instance):
        q = build_qubo(instance)
        n = len(instance.trees)
        assert q.shape == (n, n)
        assert np.allclose(q, q.T)

    def test_diagonal_has_pick_reward(self, instance):
        q = build_qubo(instance)
        for i in range(len(instance.trees)):
            assert q[i, i] == pytest.approx(
                _PICK_REWARD + float(instance.node_weight[i])
            )

    def test_same_cluster_penalty(self, instance):
        q = build_qubo(instance)
        # Candidates 1 and 2 belong to cluster 1.
        assert q[1, 2] == pytest.approx(-_SAME_CLUSTER_PENALTY / 2)

    def test_feasible_state_beats_infeasible(self, instance):
        q = build_qubo(instance)
        feasible = np.array([1.0, 0.0, 1.0])
        double_pick = np.array([1.0, 1.0, 1.0])
        empty = np.zeros(3)
        assert _energy(q, feasible) > _energy(q, double_pick)
        assert _energy(q, feasible) > _energy(q, empty)


class TestAnnealing:
    def test_returns_feasible_selection(self, instance):
        result = solve_qubo_annealing(instance, seed=1)
        assert len(result.choice) == instance.n_clusters
        for ci, a in enumerate(result.choice):
            assert 0 <= a < len(instance.clusters[ci])

    def test_finds_the_obvious_optimum(self, instance):
        result = solve_qubo_annealing(instance, seed=2)
        assert result.choice == [0, 1]
        assert result.objective == pytest.approx(0.0)

    def test_close_to_exact_on_random_instances(self):
        import random

        rng = random.Random(4)
        clusters = []
        for ci in range(5):
            cands = []
            for _ in range(3):
                x, y = rng.randrange(12), rng.randrange(12)
                cands.append(tree(ci, (x, y), (x + 6, y), (x + 3, y)))
            clusters.append(cands)
        inst = SelectionInstance(clusters)
        exact = solve_exact(inst)
        annealed = solve_qubo_annealing(inst, seed=7, sweeps=400)
        assert annealed.objective <= exact.objective + 1e-9
        # The annealer should land within 20% of optimal penalty.
        assert annealed.objective >= exact.objective * 1.2 - 1e-9

    def test_deterministic_for_fixed_seed(self, instance):
        a = solve_qubo_annealing(instance, seed=3)
        b = solve_qubo_annealing(instance, seed=3)
        assert a.choice == b.choice
        assert a.objective == b.objective
