"""Tests for bounded-skew DME merging."""

import pytest

from repro.dme import balanced_bipartition_topology, compute_merging_regions
from repro.dme.bounded_skew import compute_merging_regions_bounded
from repro.geometry import Point


def build(points, skew_h):
    root = balanced_bipartition_topology(points)
    compute_merging_regions_bounded(root, skew_h)
    return root


def subtree_wire(node):
    """Total required edge length (half units) of a merged topology."""
    total = 0
    for n in node.walk():
        total += n.edge_h
    return total


def sink_depths(node):
    if node.is_leaf():
        return [0]
    out = []
    for child in node.children:
        out.extend(d + child.edge_h for d in sink_depths(child))
    return out


def test_negative_budget_rejected():
    root = balanced_bipartition_topology([Point(0, 0), Point(4, 0)])
    with pytest.raises(ValueError):
        compute_merging_regions_bounded(root, -1)


def test_zero_budget_matches_zero_skew():
    points = [Point(0, 0), Point(8, 0), Point(0, 8), Point(8, 8)]
    bounded = build(points, 0)
    zero = balanced_bipartition_topology(points)
    compute_merging_regions(zero)
    assert subtree_wire(bounded) == subtree_wire(zero)
    depths = sink_depths(bounded)
    assert max(depths) - min(depths) == 0


def test_budget_bounds_sink_spread():
    points = [Point(2, 3), Point(19, 5), Point(7, 16), Point(15, 11)]
    for skew_h in (0, 2, 4, 8):
        root = build(points, skew_h)
        depths = sink_depths(root)
        assert max(depths) - min(depths) <= skew_h


def test_budget_saves_extension_wire():
    """Unbalanced sinks: a skew budget avoids snaking wire."""
    points = [Point(0, 0), Point(20, 0), Point(22, 0)]
    tight = build(points, 0)
    loose = build(points, 8)  # 4 grid units of slack
    assert subtree_wire(loose) <= subtree_wire(tight)
    # The tight tree needs an extension (pair at distance 2 merges with a
    # far sink); the loose tree absorbs part of it in the budget.
    depths = sink_depths(loose)
    assert max(depths) - min(depths) <= 8


def test_loose_budget_saves_wire_in_aggregate():
    """Skew slack saves wire overall (per-instance monotonicity is not
    guaranteed by the greedy split, but the aggregate must improve and a
    single instance may regress only marginally)."""
    import random

    rng = random.Random(9)
    totals = {0: 0, 4: 0, 16: 0}
    for _ in range(10):
        points = [
            Point(rng.randrange(40), rng.randrange(40)) for _ in range(5)
        ]
        points = list(dict.fromkeys(points))
        if len(points) < 2:
            continue
        per_budget = {k: subtree_wire(build(points, k)) for k in totals}
        for k, w in per_budget.items():
            totals[k] += w
        assert per_budget[16] <= per_budget[0] + 4
        assert per_budget[4] <= per_budget[0] + 4
    assert totals[16] <= totals[4] <= totals[0]


def test_merge_regions_are_valid():
    points = [Point(1, 1), Point(17, 3), Point(4, 18)]
    root = build(points, 4)
    for node in root.walk():
        assert node.merge_region is not None
        assert node.merge_region.is_valid()
