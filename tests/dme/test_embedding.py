"""Tests for top-down merging-node embedding."""

import pytest

from repro.dme import (
    balanced_bipartition_topology,
    compute_merging_regions,
    embed_tree,
)
from repro.dme.embedding import EmbeddingError, find_free_cell_near, _ring
from repro.geometry import Point
from repro.grid import RoutingGrid


def merged_topology(points):
    root = balanced_bipartition_topology(points)
    compute_merging_regions(root)
    return root


class TestRing:
    def test_radius_zero(self):
        assert list(_ring(Point(5, 5), 0)) == [Point(5, 5)]

    def test_ring_cells_at_exact_distance(self):
        center = Point(5, 5)
        for radius in (1, 2, 3):
            cells = list(_ring(center, radius))
            assert cells
            assert all(center.manhattan(c) == radius for c in cells)
            assert len(set(cells)) == len(cells)
            assert len(cells) == 4 * radius


class TestFindFreeCellNear:
    def test_free_target_returned(self):
        grid = RoutingGrid(10, 10)
        assert find_free_cell_near(grid, Point(4, 4)) == Point(4, 4)

    def test_blocked_target_moves_to_neighbor(self):
        grid = RoutingGrid(10, 10)
        grid.set_obstacle(Point(4, 4))
        found = found = find_free_cell_near(grid, Point(4, 4))
        assert found.manhattan(Point(4, 4)) == 1
        assert grid.is_free(found)

    def test_extra_blocked_cells_avoided(self):
        grid = RoutingGrid(10, 10)
        blocked = {Point(4, 4)}
        found = find_free_cell_near(grid, Point(4, 4), blocked)
        assert found != Point(4, 4)

    def test_fully_blocked_raises(self):
        grid = RoutingGrid(3, 3)
        for cell in grid.extent().cells():
            grid.set_obstacle(cell)
        with pytest.raises(EmbeddingError):
            find_free_cell_near(grid, Point(1, 1))

    def test_off_chip_target_still_finds_on_chip_cell(self):
        grid = RoutingGrid(5, 5)
        found = find_free_cell_near(grid, Point(-3, 2))
        assert grid.in_bounds(found)


class TestEmbedTree:
    def test_requires_merging_regions(self):
        grid = RoutingGrid(20, 20)
        root = balanced_bipartition_topology([Point(0, 0), Point(4, 0)])
        with pytest.raises(ValueError):
            embed_tree(grid, root)

    def test_single_leaf_noop(self):
        grid = RoutingGrid(20, 20)
        root = merged_topology([Point(3, 3)])
        embed_tree(grid, root)
        assert root.position == Point(3, 3)

    def test_two_sinks_root_is_equidistant(self):
        grid = RoutingGrid(20, 20)
        root = merged_topology([Point(2, 2), Point(10, 2)])
        embed_tree(grid, root)
        assert root.position is not None
        da = root.position.manhattan(Point(2, 2))
        db = root.position.manhattan(Point(10, 2))
        assert abs(da - db) <= 1  # rounding tolerance only


    def test_all_nodes_embedded_and_free(self):
        grid = RoutingGrid(30, 30)
        grid.add_obstacles([Point(15, y) for y in range(10, 20)])
        points = [Point(2, 2), Point(28, 3), Point(5, 25), Point(27, 27)]
        root = merged_topology(points)
        embed_tree(grid, root)
        for node in root.walk():
            assert node.position is not None
            assert grid.in_bounds(node.position)
            if not node.is_leaf():
                assert grid.is_free(node.position)

    def test_obstacle_displaces_merging_node(self):
        grid = RoutingGrid(21, 21)
        root_free = merged_topology([Point(0, 10), Point(20, 10)])
        embed_tree(grid, root_free)
        free_pos = root_free.position

        blocked_grid = RoutingGrid(21, 21)
        blocked_grid.add_obstacles(
            [Point(free_pos.x + dx, free_pos.y + dy)
             for dx in (-1, 0, 1) for dy in (-1, 0, 1)]
        )
        root_blocked = merged_topology([Point(0, 10), Point(20, 10)])
        embed_tree(blocked_grid, root_blocked)
        assert root_blocked.position != free_pos
        assert blocked_grid.is_free(root_blocked.position)
        assert root_blocked.snap_h > 0

    def test_root_choice_respected_when_free(self):
        grid = RoutingGrid(20, 20)
        root = merged_topology([Point(0, 0), Point(8, 0)])
        samples = root.merge_region.sample_grid_points(limit=4)
        assert samples
        choice = samples[0]
        embed_tree(grid, root, root_choice=choice)
        assert root.position == choice

    def test_policies_produce_valid_embeddings(self):
        grid = RoutingGrid(30, 30)
        points = [Point(1, 1), Point(25, 2), Point(3, 24), Point(26, 27)]
        for policy in ("nearest", "lo", "hi"):
            root = merged_topology(points)
            embed_tree(grid, root, policy=policy)
            assert all(n.position is not None for n in root.walk())

    def test_unknown_policy_raises(self):
        grid = RoutingGrid(30, 30)
        points = [Point(1, 1), Point(25, 2), Point(3, 24), Point(26, 27)]
        root = merged_topology(points)
        with pytest.raises(ValueError):
            embed_tree(grid, root, policy="bogus")
