"""Tests for the bottom-up merging-segment phase."""

import pytest

from repro.dme import balanced_bipartition_topology, compute_merging_regions
from repro.geometry import Point


def build(points):
    root = balanced_bipartition_topology(points)
    compute_merging_regions(root)
    return root


def test_leaf_region_is_its_position():
    root = build([Point(3, 4)])
    assert root.merge_region is not None
    pts = list(root.merge_region.grid_points())
    assert pts == [Point(3, 4)]
    assert root.delay_h == 0


def test_two_sinks_even_distance_balanced():
    root = build([Point(0, 0), Point(4, 0)])
    a, b = root.children
    assert a.edge_h + b.edge_h == 8  # distance 4 in half units
    assert a.delay_h + a.edge_h == b.delay_h + b.edge_h
    assert root.delay_h == 4  # two grid units to either sink
    for p in root.merge_region.grid_points():
        assert p.manhattan(Point(0, 0)) == 2
        assert p.manhattan(Point(4, 0)) == 2


def test_two_sinks_odd_distance_rounding():
    root = build([Point(0, 0), Point(3, 0)])
    a, b = root.children
    # Odd split: edges differ by at most one half unit.
    assert abs((a.delay_h + a.edge_h) - (b.delay_h + b.edge_h)) <= 1
    assert a.edge_h + b.edge_h == 6


def test_four_sinks_square_zero_mismatch():
    points = [Point(0, 0), Point(8, 0), Point(0, 8), Point(8, 8)]
    root = build(points)
    # All four sinks are symmetric: every sink's balanced distance from
    # the root equals the root delay.
    for leaf in root.leaves():
        depth_h = 0
        # Walk up is implicit: collect each leaf's path length through
        # edge_h annotations by traversing from root.
    # delay equality holds by construction; check the tree's own invariant
    def check(node):
        if node.is_leaf():
            return 0
        depths = []
        for child in node.children:
            depths.append(check(child) + child.edge_h)
        assert abs(depths[0] - depths[1]) <= 1  # rounding tolerance
        return max(depths)

    total = check(root)
    assert total == root.delay_h


def test_detour_case_extends_shallow_edge():
    # Three collinear sinks: pair (0,0)-(20,0) merges deep, then merges
    # with nearby (22, 0) whose subtree is much shallower.
    root = build([Point(0, 0), Point(20, 0), Point(22, 0)])

    def check(node):
        if node.is_leaf():
            return 0
        depths = [check(c) + c.edge_h for c in node.children]
        assert abs(depths[0] - depths[1]) <= 1
        return max(depths)

    check(root)
    # Some edge must be longer than its geometric span (snaking).
    def has_extension(node):
        if node.is_leaf():
            return False
        for child in node.children:
            if child.merge_region is not None and node.merge_region is not None:
                pass
        return any(has_extension(c) for c in node.children) or any(
            c.edge_h > 0 for c in node.children
        )

    assert has_extension(root)


def test_balanced_distances_for_random_cluster():
    points = [Point(2, 3), Point(14, 5), Point(7, 11), Point(1, 9)]
    root = build(points)

    def depths(node):
        if node.is_leaf():
            return [0]
        out = []
        for child in node.children:
            out.extend(d + child.edge_h for d in depths(child))
        return out

    ds = depths(root)
    # Each level rounds by at most one half unit; with n sinks the total
    # spread is bounded by the tree height.
    assert max(ds) - min(ds) <= 2 * len(points)


def test_merge_requires_validated_topology():
    from repro.dme.tree import TopologyNode

    bad = TopologyNode(children=[TopologyNode(sink=0, position=Point(0, 0))])
    with pytest.raises(ValueError):
        compute_merging_regions(bad)
