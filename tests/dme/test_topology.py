"""Tests for the balanced-bipartition topology."""

import pytest

from repro.dme import balanced_bipartition_topology
from repro.dme.topology import _diameter
from repro.geometry import Point


def sinks_of(node):
    return sorted(leaf.sink for leaf in node.leaves())


def test_empty_rejected():
    with pytest.raises(ValueError):
        balanced_bipartition_topology([])


def test_single_point_is_leaf():
    root = balanced_bipartition_topology([Point(3, 3)])
    assert root.is_leaf()
    assert root.sink == 0
    assert root.position == Point(3, 3)


def test_two_points():
    root = balanced_bipartition_topology([Point(0, 0), Point(4, 0)])
    assert not root.is_leaf()
    assert sinks_of(root) == [0, 1]
    assert all(c.is_leaf() for c in root.children)


def test_even_cluster_is_balanced_binary_tree():
    points = [Point(0, 0), Point(8, 0), Point(0, 8), Point(8, 8)]
    root = balanced_bipartition_topology(points)
    assert sinks_of(root) == [0, 1, 2, 3]
    left, right = root.children
    assert len(list(left.leaves())) == 2
    assert len(list(right.leaves())) == 2


def test_bipartition_separates_far_groups():
    # Two tight pairs far apart must be split pair-vs-pair.
    points = [Point(0, 0), Point(1, 0), Point(50, 50), Point(51, 50)]
    root = balanced_bipartition_topology(points)
    groups = [sinks_of(c) for c in root.children]
    assert sorted(groups) == [[0, 1], [2, 3]]


def test_odd_cluster_partition_sizes():
    points = [Point(x, 0) for x in range(5)]
    root = balanced_bipartition_topology(points)
    sizes = sorted(len(list(c.leaves())) for c in root.children)
    assert sizes == [2, 3]
    assert sinks_of(root) == [0, 1, 2, 3, 4]


def test_every_sink_appears_exactly_once():
    points = [Point(i * 3 % 17, i * 7 % 13) for i in range(9)]
    root = balanced_bipartition_topology(points)
    assert sinks_of(root) == list(range(9))


def test_diameter_helper():
    assert _diameter([]) == 0
    assert _diameter([Point(0, 0)]) == 0
    assert _diameter([Point(0, 0), Point(3, 4)]) == 7
