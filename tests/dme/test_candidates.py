"""Tests for candidate Steiner-tree enumeration and CandidateTree."""

import pytest

from repro.dme import generate_candidates
from repro.dme.candidates import _clone_topology
from repro.dme.tree import CandidateTree, TopologyNode
from repro.geometry import Point
from repro.grid import RoutingGrid


def test_empty_cluster_rejected():
    grid = RoutingGrid(10, 10)
    with pytest.raises(ValueError):
        generate_candidates(grid, 0, [])


def test_single_valve_cluster_single_candidate():
    grid = RoutingGrid(10, 10)
    cands = generate_candidates(grid, 0, [Point(4, 4)])
    assert len(cands) == 1
    assert cands[0].root_position == Point(4, 4)
    assert cands[0].edges() == []
    assert cands[0].mismatch() == 0


def test_two_valve_cluster_candidates_balanced():
    grid = RoutingGrid(20, 20)
    cands = generate_candidates(grid, 1, [Point(2, 2), Point(10, 2)], k=4)
    assert cands
    for tree in cands:
        lengths = tree.full_path_lengths()
        assert abs(lengths[0] - lengths[1]) <= 1


def test_four_valve_candidates_distinct_and_low_mismatch():
    grid = RoutingGrid(40, 40)
    points = [Point(5, 5), Point(30, 6), Point(6, 30), Point(32, 33)]
    cands = generate_candidates(grid, 2, points, k=6)
    assert len(cands) >= 2
    sigs = {t.signature() for t in cands}
    assert len(sigs) == len(cands)
    for tree in cands:
        # DME rounding allows only a small mismatch on an empty grid.
        assert tree.mismatch() <= len(points) * 2


def test_candidates_sorted_by_mismatch_then_length():
    grid = RoutingGrid(40, 40)
    points = [Point(5, 5), Point(30, 6), Point(6, 30), Point(32, 33)]
    cands = generate_candidates(grid, 0, points, k=6)
    keys = [(t.mismatch(), t.total_estimated_length()) for t in cands]
    assert keys == sorted(keys)


def test_k_limits_candidate_count():
    grid = RoutingGrid(40, 40)
    points = [Point(5, 5), Point(30, 6), Point(6, 30), Point(32, 33)]
    assert len(generate_candidates(grid, 0, points, k=2)) <= 2


def test_blocked_cells_not_used_for_internal_nodes():
    grid = RoutingGrid(30, 30)
    points = [Point(0, 14), Point(28, 14)]
    blocked = {Point(14, 14), Point(13, 14), Point(15, 14)}
    cands = generate_candidates(grid, 0, points, k=3, blocked=blocked)
    for tree in cands:
        for node in tree.root.walk():
            if not node.is_leaf():
                assert node.position not in blocked


def test_candidate_tree_requires_full_embedding():
    leaf_a = TopologyNode(sink=0, position=Point(0, 0))
    leaf_b = TopologyNode(sink=1, position=Point(2, 0))
    root = TopologyNode(children=[leaf_a, leaf_b])  # no root position
    with pytest.raises(ValueError):
        CandidateTree(0, root)


def test_candidate_tree_edges_and_boxes():
    leaf_a = TopologyNode(sink=0, position=Point(0, 0))
    leaf_b = TopologyNode(sink=1, position=Point(4, 0))
    root = TopologyNode(children=[leaf_a, leaf_b], position=Point(2, 0))
    tree = CandidateTree(7, root)
    edges = tree.edges()
    assert len(edges) == 2
    assert {e.child for e in edges} == {Point(0, 0), Point(4, 0)}
    assert all(e.parent == Point(2, 0) for e in edges)
    assert tree.mismatch() == 0
    assert tree.total_estimated_length() == 4
    box = edges[0].bounding_box()
    assert box.contains(edges[0].parent) and box.contains(edges[0].child)


def test_required_length_honours_extension():
    # edge_h forces a longer-than-Manhattan edge (snaking requirement).
    leaf_a = TopologyNode(sink=0, position=Point(0, 0), edge_h=20)
    leaf_b = TopologyNode(sink=1, position=Point(2, 0), edge_h=0)
    root = TopologyNode(children=[leaf_a, leaf_b], position=Point(1, 0))
    tree = CandidateTree(0, root)
    by_child = {e.child: e for e in tree.edges()}
    assert by_child[Point(0, 0)].required_length == 10  # 20 half units
    assert by_child[Point(2, 0)].required_length == 1


def test_clone_topology_is_deep():
    leaf = TopologyNode(sink=0, position=Point(1, 1))
    root = TopologyNode(children=[leaf, TopologyNode(sink=1, position=Point(3, 1))])
    clone = _clone_topology(root)
    clone.children[0].position = Point(9, 9)
    assert root.children[0].position == Point(1, 1)


def test_sink_positions_map():
    grid = RoutingGrid(20, 20)
    points = [Point(2, 2), Point(10, 2)]
    cands = generate_candidates(grid, 0, points, k=1)
    positions = cands[0].sink_positions()
    assert positions == {0: Point(2, 2), 1: Point(10, 2)}
