"""Edge-case tests for the DME pipeline (degenerate clusters, tight grids)."""

import pytest

from repro.dme import (
    balanced_bipartition_topology,
    compute_merging_regions,
    embed_tree,
    generate_candidates,
)
from repro.geometry import Point
from repro.grid import RoutingGrid


class TestDegenerateClusters:
    def test_two_adjacent_valves(self):
        grid = RoutingGrid(10, 10)
        cands = generate_candidates(grid, 0, [Point(4, 4), Point(5, 4)])
        assert cands
        tree = cands[0]
        lengths = tree.full_path_lengths()
        # Distance 1 (odd): the best achievable split is 0/1.
        assert abs(lengths[0] - lengths[1]) <= 1

    def test_collinear_valves(self):
        grid = RoutingGrid(30, 10)
        points = [Point(2, 5), Point(12, 5), Point(22, 5)]
        cands = generate_candidates(grid, 0, points, k=4)
        assert cands
        for tree in cands:
            lengths = tree.full_path_lengths()
            assert max(lengths.values()) - min(lengths.values()) <= 2 * len(points)

    def test_coincident_merge_region_with_sink_blocked(self):
        """Internal nodes must not be embedded on blocked sink cells."""
        grid = RoutingGrid(20, 20)
        points = [Point(5, 5), Point(5, 9), Point(5, 13)]
        blocked = set(points)
        cands = generate_candidates(grid, 0, points, k=3, blocked=blocked)
        for tree in cands:
            for node in tree.root.walk():
                if not node.is_leaf():
                    assert node.position not in blocked

    def test_duplicate_positions_still_embed(self):
        # Two valves on neighbouring cells plus a clone cluster elsewhere.
        grid = RoutingGrid(12, 12)
        cands = generate_candidates(grid, 0, [Point(2, 2), Point(2, 3)])
        assert cands
        assert cands[0].mismatch() <= 1


class TestTightGrids:
    def test_embedding_on_narrow_corridor(self):
        grid = RoutingGrid(30, 3)
        points = [Point(2, 1), Point(27, 1)]
        cands = generate_candidates(grid, 0, points, k=2)
        assert cands
        for tree in cands:
            for node in tree.root.walk():
                assert grid.in_bounds(node.position)

    def test_heavily_obstructed_grid_may_yield_fewer_candidates(self):
        grid = RoutingGrid(20, 20)
        # Block everything except a thin frame and the sink cells.
        for x in range(2, 18):
            for y in range(2, 18):
                grid.set_obstacle(Point(x, y))
        points = [Point(0, 0), Point(19, 19)]
        cands = generate_candidates(grid, 0, points, k=4)
        # Merging nodes land on the frame; candidates may be few but valid.
        for tree in cands:
            for node in tree.root.walk():
                if not node.is_leaf():
                    assert grid.is_free(node.position)


class TestLargeClusters:
    def test_eight_sinks_balanced(self):
        grid = RoutingGrid(60, 60)
        points = [
            Point(5, 5),
            Point(50, 8),
            Point(8, 48),
            Point(52, 50),
            Point(28, 5),
            Point(5, 30),
            Point(55, 28),
            Point(30, 55),
        ]
        cands = generate_candidates(grid, 0, points, k=4)
        assert cands
        tree = cands[0]
        lengths = tree.full_path_lengths()
        assert set(lengths) == set(range(8))
        assert max(lengths.values()) - min(lengths.values()) <= 2 * len(points)

    def test_odd_cluster_size_seven(self):
        grid = RoutingGrid(50, 50)
        points = [Point(5 + 6 * i, 5 + (i * 11) % 37) for i in range(7)]
        cands = generate_candidates(grid, 3, points, k=3)
        assert cands
        assert all(t.cluster_id == 3 for t in cands)


class TestEmbedIdempotence:
    def test_embedding_twice_is_stable(self):
        grid = RoutingGrid(30, 30)
        points = [Point(3, 3), Point(25, 4), Point(5, 24), Point(26, 26)]
        root = balanced_bipartition_topology(points)
        compute_merging_regions(root)
        embed_tree(grid, root)
        first = [n.position for n in root.walk()]
        embed_tree(grid, root)
        second = [n.position for n in root.walk()]
        assert first == second
