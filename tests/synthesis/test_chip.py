"""Tests for the assay-to-design front-end, through to routing."""

import pytest

from repro import run_pacor
from repro.analysis import verify_result
from repro.synthesis import (
    AssaySchedule,
    GuardBank,
    InputSelector,
    Multiplexer,
    Operation,
    RotaryMixer,
    assay_to_design,
)


def small_assay():
    mixer = RotaryMixer("mixer")
    bank = GuardBank("guard", 3)
    return AssaySchedule(
        components=[mixer, bank],
        operations=[
            Operation("guard", "release", start=0),
            Operation("mixer", "load", start=0),
            Operation("mixer", "mix", start=2, repeats=2),
            Operation("mixer", "flush", start=14),
            Operation("guard", "seal", start=15),
        ],
    )


def test_design_is_valid_and_complete():
    design = assay_to_design(small_assay(), name="demo")
    assert design.name == "demo"
    assert len(design.valves) == 6 + 3
    # LM groups: the mixer inlet pair plus the whole guard bank.
    sizes = sorted(len(g) for g in design.lm_groups)
    assert sizes == [2, 3]
    design.validate()


def test_valves_carry_compiled_sequences():
    design = assay_to_design(small_assay())
    lengths = {len(v.sequence) for v in design.valves}
    assert lengths == {16}


def test_custom_grid_and_origins():
    design = assay_to_design(
        small_assay(),
        grid_size=(40, 40),
        component_origins={"mixer": (5, 5), "guard": (25, 25)},
    )
    assert design.grid.width == 40
    xs = [v.position.x for v in design.valves]
    assert min(xs) == 5


def test_valve_off_chip_rejected():
    with pytest.raises(ValueError, match="falls off"):
        assay_to_design(
            small_assay(),
            grid_size=(10, 10),
            component_origins={"mixer": (5, 5), "guard": (9, 9)},
        )


def test_pin_count_override():
    design = assay_to_design(small_assay(), n_pins=12)
    assert len(design.control_pins) == 12


def test_assay_chip_routes_with_pacor():
    """End to end: synthesize, route, verify — the library's full stack."""
    design = assay_to_design(small_assay())
    result = run_pacor(design)
    assert result.completion_rate == 1.0
    verify_result(design, result)
    # Both LM clusters should be matched on this small, open chip.
    assert result.matched_clusters == result.n_lm_clusters == 2


def test_mux_chip_needs_one_pin_per_line():
    mux = Multiplexer("mux", 4)
    schedule = AssaySchedule(
        [mux],
        [Operation("mux", f"select:{k}", start=k) for k in range(4)],
    )
    design = assay_to_design(schedule)
    result = run_pacor(design)
    assert result.completion_rate == 1.0
    # Every control line is its own net: 2*log2(4) = 4 pins.
    assert result.pins_used == 4
