"""Tests for schedule compilation into activation tables."""

import pytest

from repro.synthesis import (
    AssaySchedule,
    GuardBank,
    InputSelector,
    Multiplexer,
    Operation,
    RotaryMixer,
    compile_sequences,
)
from repro.valves.compatibility import pairwise_compatible
from repro.valves.valve import Valve
from repro.geometry import Point


def mixer_schedule():
    mixer = RotaryMixer("m")
    return AssaySchedule(
        components=[mixer],
        operations=[
            Operation("m", "load", start=0),
            Operation("m", "mix", start=2, repeats=2),
            Operation("m", "flush", start=14),
        ],
    )


class TestCompileSequences:
    def test_horizon_is_last_end(self):
        table = compile_sequences(mixer_schedule())
        assert all(len(seq) == 16 for seq in table.values())

    def test_idle_steps_are_dont_care(self):
        mixer = RotaryMixer("m")
        schedule = AssaySchedule([mixer], [Operation("m", "load", start=3)])
        table = compile_sequences(schedule)
        seq = table[("m", "in_a")]
        assert seq.steps[:3] == "XXX"
        assert seq.steps[3:5] == "00"

    def test_repeats_tile_phases(self):
        mixer = RotaryMixer("m")
        schedule = AssaySchedule([mixer], [Operation("m", "mix", start=0, repeats=3)])
        table = compile_sequences(schedule)
        ring = table[("m", "ring0")].steps
        assert len(ring) == 18
        assert ring[:6] == ring[6:12] == ring[12:18]

    def test_overlap_rejected(self):
        mixer = RotaryMixer("m")
        schedule = AssaySchedule(
            [mixer],
            [Operation("m", "load", start=0), Operation("m", "mix", start=1)],
        )
        with pytest.raises(ValueError, match="overlap"):
            compile_sequences(schedule)

    def test_unknown_component_rejected(self):
        schedule = AssaySchedule([RotaryMixer("m")], [Operation("q", "load", 0)])
        with pytest.raises(ValueError, match="unknown component"):
            compile_sequences(schedule)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            compile_sequences(AssaySchedule([RotaryMixer("m")], []))

    def test_duplicate_component_names_rejected(self):
        schedule = AssaySchedule(
            [RotaryMixer("m"), GuardBank("m", 2)],
            [Operation("m", "seal", 0)],
        )
        with pytest.raises(ValueError, match="unique"):
            compile_sequences(schedule)

    def test_operation_validation(self):
        with pytest.raises(ValueError):
            Operation("m", "load", start=-1)
        with pytest.raises(ValueError):
            Operation("m", "load", start=0, repeats=0)


class TestCompatibilityStructure:
    def test_mixer_inlets_stay_compatible(self):
        """The LM pair (in_a, in_b) always actuates together."""
        table = compile_sequences(mixer_schedule())
        a = Valve(0, Point(0, 0), table[("m", "in_a")])
        b = Valve(1, Point(1, 0), table[("m", "in_b")])
        assert pairwise_compatible([a, b])

    def test_ring_valves_pairwise_incompatible(self):
        table = compile_sequences(mixer_schedule())
        rings = [table[("m", f"ring{i}")] for i in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not rings[i].compatible(rings[j])

    def test_mux_complement_lines_incompatible(self):
        mux = Multiplexer("x", 4)
        schedule = AssaySchedule(
            [mux],
            [Operation("x", f"select:{k}", start=k) for k in range(4)],
        )
        table = compile_sequences(schedule)
        assert not table[("x", "bit0_0")].compatible(table[("x", "bit0_1")])

    def test_guard_bank_members_identical(self):
        bank = GuardBank("g", 3)
        schedule = AssaySchedule(
            [bank],
            [Operation("g", "release", 0), Operation("g", "seal", 5)],
        )
        table = compile_sequences(schedule)
        seqs = {table[("g", f"g{i}")].steps for i in range(3)}
        assert len(seqs) == 1

    def test_independent_components_dont_interfere(self):
        schedule = AssaySchedule(
            [RotaryMixer("m"), InputSelector("s", 2)],
            [
                Operation("m", "mix", start=0),
                Operation("s", "open:0", start=2),
            ],
        )
        table = compile_sequences(schedule)
        # The selector is idle except step 2.
        seq = table[("s", "in1")]
        assert seq.steps[2] == "1"
        assert set(seq.steps[:2]) | set(seq.steps[3:]) <= {"X"}
