"""Tests for the flow-layer component models."""

import pytest

from repro.synthesis import GuardBank, InputSelector, Multiplexer, RotaryMixer
from repro.valves import compatible_status


class TestRotaryMixer:
    def test_valves_and_operations(self):
        mixer = RotaryMixer("m")
        assert len(mixer.valve_names()) == 6
        assert set(mixer.operations()) == {"load", "mix", "flush"}

    def test_unknown_operation(self):
        with pytest.raises(ValueError, match="does not support"):
            RotaryMixer("m").phases("spin")

    def test_mix_is_full_peristaltic_rotation(self):
        phases = RotaryMixer("m").phases("mix")
        assert len(phases) == 6
        for step in phases:
            # Chamber sealed during mixing.
            assert step["in_a"] == "1"
            assert step["in_b"] == "1"
            assert step["out"] == "1"
        # Consecutive ring patterns differ (the wave moves).
        rings = [
            "".join(step[f"ring{i}"] for i in range(3)) for step in phases
        ]
        assert len(set(rings)) == 6

    def test_inlets_are_lm_pair(self):
        assert RotaryMixer("m").lm_groups() == [["in_a", "in_b"]]

    def test_load_opens_inlets_seals_outlet(self):
        step = RotaryMixer("m").phases("load")[0]
        assert step["in_a"] == step["in_b"] == "0"
        assert step["out"] == "1"


class TestMultiplexer:
    def test_line_count_is_2log2(self):
        assert len(Multiplexer("x", 4).valve_names()) == 4
        assert len(Multiplexer("x", 8).valve_names()) == 6
        assert len(Multiplexer("x", 5).valve_names()) == 6  # ceil(log2 5) = 3

    def test_too_few_inputs(self):
        with pytest.raises(ValueError):
            Multiplexer("x", 1)

    def test_select_opens_matching_lines(self):
        mux = Multiplexer("x", 4)
        step = mux.phases("select:2")[0]  # binary 10
        assert step["bit0_0"] == "0" and step["bit0_1"] == "1"
        assert step["bit1_1"] == "0" and step["bit1_0"] == "1"

    def test_select_out_of_range(self):
        with pytest.raises(ValueError):
            Multiplexer("x", 4).phases("select:7")

    def test_complementary_lines_conflict(self):
        """Complementary mux lines can never share a pin."""
        mux = Multiplexer("x", 2)
        a = mux.phases("select:0")[0]
        assert not compatible_status(a["bit0_0"], a["bit0_1"])

    def test_no_lm_groups(self):
        assert Multiplexer("x", 4).lm_groups() == []


class TestInputSelector:
    def test_open_one(self):
        sel = InputSelector("s", 3)
        step = sel.phases("open:1")[0]
        assert step["in1"] == "0"
        assert step["in0"] == step["in2"] == "1"

    def test_close_all(self):
        step = InputSelector("s", 3).phases("close_all")[0]
        assert set(step.values()) == {"1"}

    def test_bad_index(self):
        with pytest.raises(ValueError):
            InputSelector("s", 2).phases("open:5")


class TestGuardBank:
    def test_seal_and_release(self):
        bank = GuardBank("g", 4)
        assert set(bank.phases("seal")[0].values()) == {"1"}
        assert set(bank.phases("release")[0].values()) == {"0"}

    def test_whole_bank_is_lm_group(self):
        bank = GuardBank("g", 4)
        assert bank.lm_groups() == [["g0", "g1", "g2", "g3"]]

    def test_needs_two_valves(self):
        with pytest.raises(ValueError):
            GuardBank("g", 1)
