"""Tests for the flow-layer-aware demo chip."""

import pytest

from repro import run_pacor
from repro.analysis import verify_result
from repro.flowlayer import control_obstacles
from repro.synthesis.flowchip import mixer_chip_design


@pytest.fixture(scope="module")
def chip():
    return mixer_chip_design()


def test_design_validates(chip):
    design, flow = chip
    design.validate()
    flow.validate(design.grid)


def test_minimum_grid_enforced():
    with pytest.raises(ValueError):
        mixer_chip_design(grid_side=20)


def test_obstacles_are_flow_projection(chip):
    design, flow = chip
    assert set(design.grid.obstacle_cells()) == control_obstacles(flow)


def test_valves_sit_on_flow_channels(chip):
    design, flow = chip
    flow_cells = flow.all_cells()
    for valve in design.valves:
        assert valve.position in flow_cells
        assert valve.position in flow.valve_sites


def test_component_lm_groups_carried_over(chip):
    design, _ = chip
    sizes = sorted(len(g) for g in design.lm_groups)
    assert sizes == [2, 3]  # mixer inlet pair + guard bank


def test_routes_to_full_completion(chip):
    design, flow = chip
    result = run_pacor(design)
    assert result.completion_rate == 1.0
    verify_result(design, result)
    # Control channels never cross flow channels off the valve sites.
    forbidden = flow.all_cells() - flow.valve_sites
    for net in result.nets:
        assert not net.cells & forbidden


def test_mixer_inlet_pair_matched(chip):
    design, _ = chip
    result = run_pacor(design)
    pair_net = next(n for n in result.nets if sorted(n.valve_ids) == [0, 1])
    assert pair_net.matched is True
